package core

import (
	"math"
	"sort"
	"time"

	"pushadminer/internal/cluster"
	"pushadminer/internal/simhash"
	"pushadminer/internal/telemetry"
)

// This file implements the LSH-blocked clustering path (§5.1 at crawl-
// fleet scale): instead of filtering an all-pairs scan through the
// SimHash band index, candidate pairs are generated *from* the index's
// buckets, confirmed by Hamming distance, and grouped into connected-
// component blocks by union-find. Each block is clustered exactly with
// the cached agglomerative path (in parallel across blocks), and the
// block-local dendrograms are stitched under one globally swept cut
// height, so total cost tracks the candidate count — Σ|B|² — not n².

// blockDendrogram is one block's clustering substrate: its member
// records (ascending global indices), their exact local distance
// matrix, and the dendrogram over it. It depends only on the member
// set, which is what lets the incremental clusterer cache and reuse it.
type blockDendrogram struct {
	members []int
	dm      *cluster.DistMatrix
	dend    *cluster.Dendrogram

	// Cut-sweep memo (see sweepBlockedCutMemo): one entry per applied-
	// merge count ("segment"), caching the local labeling and the
	// block's silhouette-sum contribution. The memo lives on the
	// dendrogram precisely because it is keyed the same way as the
	// incremental cache — by the member set the dendrogram was built
	// over — so a block reused across Recluster calls carries its swept
	// contributions with it. zeroCut is the zero-merge state every
	// sweep starts from (all singletons, contribution identically 0).
	memo     map[int]*blockCutMemo
	memoFIFO []int
	zeroCut  *blockCutMemo
}

// blockCutMemo is one cached cut of a block dendrogram: the local
// labeling after seg merges (nil until the rescore pass fills it; the
// seg-0 all-singleton state never materializes labels), the block's
// cluster count at that cut, and its silhouette-sum contribution under
// a given (farD, multi) context. A block's labeling only changes at
// its own merge heights, so every candidate height h maps to the
// segment seg = #merges with Distance <= h, and all heights inside one
// segment share this entry bit-for-bit.
type blockCutMemo struct {
	seg    int
	kb     int
	lab    []int
	silSum float64
	farD   float64
	multi  bool
}

// blockCutMemoCap bounds the per-block memo. Sweeps see at most
// MaxCutCandidates (default 64) distinct segments, so the cap only
// bites when candidate pools drift across many reclusters; eviction is
// FIFO by insertion order, which is deterministic, and an entry still
// referenced by an in-flight sweep stays reachable through its pointer
// even after leaving the map.
const blockCutMemoCap = 192

// seg0 returns the block's zero-merge memo entry (every member its own
// singleton; silhouette contribution exactly 0 under any far estimate).
func (bd *blockDendrogram) seg0() *blockCutMemo {
	if bd.zeroCut == nil {
		bd.zeroCut = &blockCutMemo{kb: len(bd.members)}
	}
	return bd.zeroCut
}

// memoOutcome classifies one cutMemoAt lookup: hit (entry valid as-is),
// refresh (labeling reusable, silhouette contribution computed under a
// different far estimate and must be rescored), miss (nothing cached).
type memoOutcome int

const (
	memoHit memoOutcome = iota
	memoRefresh
	memoMiss
)

// cutMemoAt returns the block's memo entry for the cut with seg merges
// applied, creating (miss) or retagging (refresh) it as needed. Fresh
// and retagged entries carry stale lab/silSum until the sweep's
// parallel rescore pass fills them; planning runs serially, so the map
// writes here never race with that pass.
func (bd *blockDendrogram) cutMemoAt(seg int, farD float64, multi bool) (*blockCutMemo, memoOutcome) {
	if m := bd.memo[seg]; m != nil {
		if m.farD == farD && m.multi == multi {
			return m, memoHit
		}
		m.farD, m.multi = farD, multi
		return m, memoRefresh
	}
	if bd.memo == nil {
		bd.memo = make(map[int]*blockCutMemo)
	}
	for len(bd.memo) >= blockCutMemoCap {
		delete(bd.memo, bd.memoFIFO[0])
		bd.memoFIFO = bd.memoFIFO[1:]
	}
	m := &blockCutMemo{seg: seg, farD: farD, multi: multi}
	bd.memo[seg] = m
	bd.memoFIFO = append(bd.memoFIFO, seg)
	return m, memoMiss
}

// buildBlockDendrogram clusters one block with the cached exact
// distance. Blocks are small; the fill is serial so the caller can fan
// out across blocks without nested pools.
func buildBlockDendrogram(fs *FeatureSet, members []int, linkage cluster.Linkage) *blockDendrogram {
	m := len(members)
	dm := cluster.NewDistMatrix(m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			dm.Set(i, j, fs.Distance(members[i], members[j]))
		}
	}
	return &blockDendrogram{members: members, dm: dm, dend: cluster.AgglomerativeLinkage(dm, linkage)}
}

// blockedParams resolves the blocking knobs from PruneOptions: bands
// always positive (blocking is banding; the negative disable sentinel
// falls back to the default), link = the cheap Hamming gate on bucket
// pairs (MaxHamming, the same candidate bound the pruned path uses;
// negative = every bucket pair reaches the distance check), distT =
// the exact-distance confirmation (BlockDistance; negative disables —
// ablation only, see the field doc).
func blockedParams(p PruneOptions) (bands, link int, distT float64) {
	p = p.withDefaults()
	bands = p.Bands
	if bands <= 0 {
		bands = 8
	}
	return bands, p.MaxHamming, p.BlockDistance
}

// blockedEdge reports whether records i and j (already sharing a band
// bucket) are confirmed as a block edge: within the Hamming gate, then
// near under the exact distance. The distance confirmation is what
// keeps blocks from percolating at scale — spurious bucket collisions
// are textually far, so the chains that would union the corpus into
// one giant component never form, while every within-cluster pair sits
// far below the threshold.
func blockedEdge(fs *FeatureSet, i, j, link int, distT float64) bool {
	if link >= 0 && !simhash.Near(fs.Hashes[i], fs.Hashes[j], link) {
		return false
	}
	return distT < 0 || fs.Distance(i, j) <= distT
}

// unionBucketPairs unions every confirmed pair within one bucket
// group, skipping pairs already connected (the Same short-circuit is
// what keeps dense campaign buckets cheap: after the first spanning
// edges, remaining pairs cost one find each, not a distance call).
// With a non-nil tally the edge test is inlined so each decision can be
// attributed (gate-rejected / distance-checked / edge) — same logic,
// same unions, so observation never changes the blocks.
func unionBucketPairs(uf *cluster.UnionFind, fs *FeatureSet, ids []int, link int, distT float64, tally *blockedTally) {
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			i, j := ids[a], ids[b]
			if uf.Same(i, j) {
				continue
			}
			if tally == nil {
				if blockedEdge(fs, i, j, link, distT) {
					uf.Union(i, j)
				}
				continue
			}
			tally.gateChecked++
			if link >= 0 && !simhash.Near(fs.Hashes[i], fs.Hashes[j], link) {
				tally.gateRejected++
				continue
			}
			if distT >= 0 {
				tally.distChecked++
				if fs.Distance(i, j) > distT {
					continue
				}
			}
			tally.edges++
			uf.Union(i, j)
		}
	}
}

// blockedComponents groups all records into connected-component blocks
// of the confirmed candidate graph. Output is canonical — blocks
// ordered by smallest member, members ascending — regardless of bucket
// iteration order.
func blockedComponents(fs *FeatureSet, bands, link int, distT float64, tally *blockedTally) [][]int {
	ix := simhash.NewBandIndex(bands)
	for i, h := range fs.Hashes {
		ix.Add(i, h)
	}
	uf := cluster.NewUnionFind(len(fs.Hashes))
	ix.ForEachGroup(func(ids []int) {
		unionBucketPairs(uf, fs, ids, link, distT, tally)
	})
	return uf.Components()
}

// buildBlockDendrograms clusters every block in parallel across
// core.fanOut workers. Per-block size/cost observations happen inside
// the fan-out (atomic histograms); the deterministic ledger events are
// flushed afterwards in ascending block order by obs.blocksLinked.
func buildBlockDendrograms(fs *FeatureSet, comps [][]int, linkage cluster.Linkage, obs *blockedObs) []*blockDendrogram {
	blocks := make([]*blockDendrogram, len(comps))
	obs.setBlocksTotal(len(comps))
	if obs == nil {
		fanOut(len(comps), 0, func(i int) {
			blocks[i] = buildBlockDendrogram(fs, comps[i], linkage)
		})
	} else {
		fanOut(len(comps), 0, func(i int) {
			start := time.Now()
			blocks[i] = buildBlockDendrogram(fs, comps[i], linkage)
			obs.blockBuilt(len(comps[i]), time.Since(start).Nanoseconds())
		})
	}
	obs.blocksLinked(comps)
	return blocks
}

// cutBlocksAt cuts every block dendrogram at height h and returns the
// per-block local labelings plus the total cluster count.
func cutBlocksAt(blocks []*blockDendrogram, h float64) (per [][]int, k int) {
	per = make([][]int, len(blocks))
	for bi, bd := range blocks {
		lab := bd.dend.CutByHeight(h)
		per[bi] = lab
		// CutByHeight labels are contiguous from 0, so the block's
		// cluster count is max+1.
		kb := 0
		for _, l := range lab {
			if l+1 > kb {
				kb = l + 1
			}
		}
		k += kb
	}
	return per, k
}

// blockSilhouetteSum returns the sum of silhouette coefficients s(i)
// over one block's members under the local labeling lab. Within-block
// terms (a(i), and b(i) against sibling clusters in the same block) use
// the exact local distances; for items whose block holds a single
// cluster, b(i) falls back to farD, the corpus-level cross-block far
// estimate — the same role the substituted ApproxDistance entries play
// in the pruned path's full-matrix silhouette. Singleton clusters score
// 0, matching cluster.Silhouette. Accumulation order is fixed
// (ascending local index), so the result is deterministic.
func blockSilhouetteSum(bd *blockDendrogram, lab []int, farD float64, multiBlock bool) float64 {
	m := len(lab)
	kb := 0
	for _, l := range lab {
		if l+1 > kb {
			kb = l + 1
		}
	}
	counts := make([]int, kb)
	for _, l := range lab {
		counts[l]++
	}
	nact := 0
	for _, l := range lab {
		if counts[l] > 1 {
			nact++
		}
	}
	if nact == 0 {
		return 0 // all singletons
	}
	// The scorer only needs bucketed sums over the multi-member
	// clusters: a singleton cluster's mean is the single distance to
	// its member, and bestB is a pure min, so all singleton buckets
	// collapse into one running min per member without changing a
	// single bit of the result (see AccumMultiByLabel). That keeps the
	// dense accumulator km-wide — and its cluster-major layout keeps
	// the scatter cache-resident however large m×km grows — so one
	// triangle pass visiting each pair once replaces the per-member
	// row walks that visit every pair twice with the lower-triangle
	// half striding across the condensed storage. The per-member
	// fallback remains for cells where few members need scoring (the
	// streaming pass reads the whole triangle regardless) and as an
	// allocation-sanity bound on the accumulator.
	km := 0
	for _, c := range counts {
		if c > 1 {
			km++
		}
	}
	if bytes := m * km * 8; 4*nact >= 3*m && bytes <= 64<<20 {
		return blockSilhouetteSumMulti(bd, lab, counts, kb, km, farD, multiBlock)
	}
	sums := make([]float64, kb)
	var total float64
	for i := 0; i < m; i++ {
		own := lab[i]
		if counts[own] == 1 {
			continue // s(i) = 0 for singletons
		}
		clear(sums)
		bd.dm.AccumRowByLabel(i, lab, sums)
		a := sums[own] / float64(counts[own]-1)
		bestB := -1.0
		for c := 0; c < kb; c++ {
			if c == own {
				continue
			}
			mean := sums[c] / float64(counts[c])
			if bestB < 0 || mean < bestB {
				bestB = mean
			}
		}
		if multiBlock && (bestB < 0 || farD < bestB) {
			bestB = farD
		}
		if bestB < 0 {
			continue // single cluster in the only block: undefined, skip
		}
		denom := a
		if bestB > denom {
			denom = bestB
		}
		if denom > 0 {
			total += (bestB - a) / denom
		}
	}
	return total
}

// blockSilhouetteSumMulti is blockSilhouetteSum's streaming variant:
// multi-member clusters are remapped to dense ids, all member×bucket
// sums come from one AccumMultiByLabel triangle pass, and each
// member's best singleton-cluster mean arrives as minS[i]. bestB is
// the same minimum value the full-width kb loop computes — multi
// means accumulate the identical additions in the identical order,
// and a singleton mean is one exact float32→float64 value — so the
// returned sum is bit-identical to the fallback path.
func blockSilhouetteSumMulti(bd *blockDendrogram, lab, counts []int, kb, km int, farD float64, multiBlock bool) float64 {
	m := len(lab)
	mlab := make([]int, kb)   // cluster -> dense multi id, -1 if singleton
	mcount := make([]int, km) // dense multi id -> member count
	km = 0
	for c, cnt := range counts {
		if cnt > 1 {
			mlab[c] = km
			mcount[km] = cnt
			km++
		} else {
			mlab[c] = -1
		}
	}
	dlab := make([]int, m)
	for i, l := range lab {
		dlab[i] = mlab[l]
	}
	acc := make([]float64, m*km)
	minS := make([]float64, m)
	for i := range minS {
		minS[i] = math.Inf(1)
	}
	bd.dm.AccumMultiByLabel(dlab, km, acc, minS)
	var total float64
	for i := 0; i < m; i++ {
		own := dlab[i]
		if own < 0 {
			continue // s(i) = 0 for singletons
		}
		a := acc[own*m+i] / float64(mcount[own]-1)
		bestB := -1.0
		for c := 0; c < km; c++ {
			if c == own {
				continue
			}
			mean := acc[c*m+i] / float64(mcount[c])
			if bestB < 0 || mean < bestB {
				bestB = mean
			}
		}
		if s := minS[i]; !math.IsInf(s, 1) && (bestB < 0 || s < bestB) {
			bestB = s
		}
		if multiBlock && (bestB < 0 || farD < bestB) {
			bestB = farD
		}
		if bestB < 0 {
			continue // single cluster in the only block: undefined, skip
		}
		denom := a
		if bestB > denom {
			denom = bestB
		}
		if denom > 0 {
			total += (bestB - a) / denom
		}
	}
	return total
}

// blockedSilhouette is the blocked stand-in for the full-matrix mean
// silhouette: exact within blocks, farD across them, averaged over
// nLive items.
func blockedSilhouette(blocks []*blockDendrogram, per [][]int, farD float64, nLive int) float64 {
	if nLive == 0 {
		return 0
	}
	multi := len(blocks) > 1
	var total float64
	for bi, bd := range blocks {
		total += blockSilhouetteSum(bd, per[bi], farD, multi)
	}
	return total / float64(nLive)
}

// blockedFar estimates the typical cross-block distance from the
// document-vector approximation over a bounded, deterministic sample of
// block representatives (each block's smallest member; at most 64
// blocks, sampled evenly in canonical block order).
func blockedFar(fs *FeatureSet, blocks []*blockDendrogram) float64 {
	if len(blocks) < 2 {
		return 1
	}
	const maxReps = 64
	reps := make([]int, 0, maxReps)
	if len(blocks) <= maxReps {
		for _, bd := range blocks {
			reps = append(reps, bd.members[0])
		}
	} else {
		for i := 0; i < maxReps; i++ {
			reps = append(reps, blocks[i*len(blocks)/maxReps].members[0])
		}
	}
	var sum float64
	var cnt int
	for a := 0; a < len(reps); a++ {
		for b := a + 1; b < len(reps); b++ {
			sum += fs.ApproxDistance(reps[a], reps[b])
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// stitchBlockedLabels turns per-block local labelings into one global
// label slice over all len(fs.Records) records, renumbered by first
// occurrence in ascending record order — the same convention
// Dendrogram.CutByHeight uses, so a blocked partition equal to the
// exact partition yields the identical label array. Records in no block
// (not yet added, incremental mid-stream) get -1.
func stitchBlockedLabels(nTotal int, blocks []*blockDendrogram, per [][]int) []int {
	labels := make([]int, nTotal)
	for i := range labels {
		labels[i] = -1
	}
	// Provisional encoding: a unique (block, local-label) id per record.
	base := 0
	for bi, bd := range blocks {
		kb := 0
		for li, g := range bd.members {
			l := per[bi][li]
			labels[g] = base + l
			if l+1 > kb {
				kb = l + 1
			}
		}
		base += kb
	}
	// Canonical renumbering by first occurrence.
	remap := make(map[int]int, base)
	next := 0
	for i := 0; i < nTotal; i++ {
		if labels[i] < 0 {
			continue
		}
		nl, ok := remap[labels[i]]
		if !ok {
			nl = next
			next++
			remap[labels[i]] = nl
		}
		labels[i] = nl
	}
	return labels
}

// blockedExactSweepMaxN is the validation-scale crossover: at or below
// this many live records the blocked path selects its cut with the
// exact machinery (full distance matrix, global dendrogram, the same
// BestCutConservative the exact path runs) and realizes the winning
// assignment through the blocks — so small-n results are
// partition-identical to the exact path by construction, which is what
// the parity matrix pins. Above it, computing the full matrix would
// defeat the sub-quadratic point, so the scalable sweep takes over:
// pooled per-block merge heights scored by the blocked silhouette
// (exact within blocks, a representative-sampled far estimate across
// them). The approximation can pick a cut one or two merges away from
// the exact choice; the clusters themselves stay exact per block.
const blockedExactSweepMaxN = 512

// blockedLiveMembers collects every block member in ascending global
// order.
func blockedLiveMembers(blocks []*blockDendrogram) []int {
	var members []int
	for _, bd := range blocks {
		members = append(members, bd.members...)
	}
	sort.Ints(members)
	return members
}

// mergeBlocksByLabels coarsens the LSH blocks until the exact labeling
// over the live members factors through them: any exact cluster whose
// members the band/Hamming gates scattered across blocks (SimHash
// recall is below 1 — two texts can be soft-cosine-near while their
// fingerprints collide in no band) unions those blocks, and merged
// groups are re-clustered. Coarsening is always safe — a block that is
// a union of whole exact clusters reproduces the exact assignment when
// the per-block groups are stitched — so this is what makes the
// validation-scale result partition-identical by construction.
// labels[p] labels members[p]; members is ascending.
func mergeBlocksByLabels(fs *FeatureSet, blocks []*blockDendrogram, members, labels []int, linkage cluster.Linkage) []*blockDendrogram {
	if len(blocks) < 2 {
		return blocks
	}
	blockOf := make(map[int]int, len(members)) // global record -> block idx
	for bi, bd := range blocks {
		for _, g := range bd.members {
			blockOf[g] = bi
		}
	}
	uf := cluster.NewUnionFind(len(blocks))
	first := make(map[int]int) // exact label -> block idx of first member
	merged := false
	for p, g := range members {
		b := blockOf[g]
		if fb, ok := first[labels[p]]; !ok {
			first[labels[p]] = b
		} else if fb != b && !uf.Same(fb, b) {
			uf.Union(fb, b)
			merged = true
		}
	}
	if !merged {
		return blocks
	}
	out := make([]*blockDendrogram, 0, len(blocks))
	for _, group := range uf.Components() {
		if len(group) == 1 {
			out = append(out, blocks[group[0]])
			continue
		}
		var mem []int
		for _, bi := range group {
			mem = append(mem, blocks[bi].members...)
		}
		sort.Ints(mem)
		out = append(out, buildBlockDendrogram(fs, mem, linkage))
	}
	// Components are ordered by smallest block index and blocks were
	// canonical, so out is already ordered by smallest member; the sort
	// just pins the invariant.
	sort.Slice(out, func(i, j int) bool { return out[i].members[0] < out[j].members[0] })
	return out
}

// realizeExactPerBlock translates the exact labeling over the live
// members into per-block local labelings (each block's labels
// contiguous from 0 by first occurrence), for stitchBlockedLabels to
// reassemble. When every exact cluster lies within one block — which
// mergeBlocksByLabels guarantees — the stitched global labels are
// identical to the exact ones, since both renumber by first occurrence
// in ascending record order.
func realizeExactPerBlock(blocks []*blockDendrogram, members, labels []int) [][]int {
	per := make([][]int, len(blocks))
	for bi, bd := range blocks {
		lab := make([]int, len(bd.members))
		remap := make(map[int]int)
		for li, g := range bd.members {
			gl := labels[sort.SearchInts(members, g)]
			nl, ok := remap[gl]
			if !ok {
				nl = len(remap)
				remap[gl] = nl
			}
			lab[li] = nl
		}
		per[bi] = lab
	}
	return per
}

// sweepBlockedCutExact is the validation-scale cut selection: it runs
// the exact path's own sweep over the live records and realizes the
// winning assignment *through* the blocks — coarsening any block
// boundary the exact clusters cross (see mergeBlocksByLabels) and
// expressing the exact labels as per-block groups. When the live set is
// the whole feature set, the labels, height and silhouette are
// bit-identical to ClusterWPNs' exact path by construction. (Re-cutting
// the per-block dendrograms at the chosen height would NOT give that
// guarantee: average-linkage merge heights depend on NN-chain
// tie-breaking, which shifts when out-of-block slots disappear, so a
// borderline merge can land on the other side of the cut. The per-block
// cut is the scalable path's tool; here the exact assignment is
// authoritative.) Returns the possibly-coarsened blocks alongside the
// per-block labelings.
func sweepBlockedCutExact(fs *FeatureSet, blocks []*blockDendrogram, linkage cluster.Linkage, maxCandidates int, tol float64) (out []*blockDendrogram, per [][]int, height, sil float64) {
	members := blockedLiveMembers(blocks)
	dm := cluster.Compute(len(members), func(i, j int) float64 {
		return fs.Distance(members[i], members[j])
	})
	dend := cluster.AgglomerativeLinkage(dm, linkage)
	best := cluster.BestCutConservative(dend, dm, maxCandidates, tol)
	if best.Clusters == len(members) {
		// Degenerate sweep (no valid cut): leaves, like the exact path.
		return blocks, leafPerBlocks(blocks), 0, 0
	}
	blocks = mergeBlocksByLabels(fs, blocks, members, best.Labels, linkage)
	per = realizeExactPerBlock(blocks, members, best.Labels)
	return blocks, per, best.Height, best.Silhouette
}

// sweepHeightDedupeTol collapses pooled candidate heights closer than
// this before sweeping: adjacent near-equal merge heights (common under
// average linkage, where many small blocks produce all-but-identical
// pair means) cut the same partition, so scoring both is pure waste.
// The tolerance is far below any silhouette-visible height difference
// and orders of magnitude below ConservativeTol's selection band.
const sweepHeightDedupeTol = 1e-9

// pooledCutCandidates pools every block's merge heights, dedupes them
// (exact, then within sweepHeightDedupeTol), and samples down to
// maxCandidates — the shared candidate source of the full and memoized
// sweeps, which keeps the two modes scoring identical height sets.
func pooledCutCandidates(blocks []*blockDendrogram, maxCandidates int) []float64 {
	var heights []float64
	for _, bd := range blocks {
		for _, mg := range bd.dend.Merges() {
			heights = append(heights, mg.Distance)
		}
	}
	sort.Float64s(heights)
	dedup := heights[:0]
	last := -1.0
	for _, h := range heights {
		if h != last {
			dedup = append(dedup, h)
			last = h
		}
	}
	dedup = cluster.DedupeCutHeights(dedup, sweepHeightDedupeTol)
	if maxCandidates <= 0 {
		maxCandidates = 64
	}
	return cluster.SampleCutHeights(dedup, maxCandidates)
}

// sweepEval is one candidate height's outcome in a pooled sweep.
type sweepEval struct {
	sil   float64
	valid bool
	k     int
}

// selectSweepCut applies the cut-selection policy shared by the full
// and memoized sweeps (the same policy as cluster.bestCut): highest
// valid silhouette wins; with tol > 0, the lowest height within tol of
// it wins instead. Returns the chosen candidate index, or -1 when no
// valid cut exists. evals must be in ascending height order.
func selectSweepCut(evals []sweepEval, tol float64) int {
	best, bestS := -1, -2.0
	for ci, e := range evals {
		if e.valid && e.sil > bestS {
			best, bestS = ci, e.sil
		}
	}
	if tol > 0 && best >= 0 {
		// Conservative: lowest valid height within tol of the best.
		for ci, e := range evals {
			if e.valid && e.sil >= bestS-tol {
				return ci
			}
		}
	}
	return best
}

// leafPerBlocks is the degenerate no-valid-cut fallback: every member
// its own singleton, like the exact path's leaf labeling.
func leafPerBlocks(blocks []*blockDendrogram) [][]int {
	per := make([][]int, len(blocks))
	for bi, bd := range blocks {
		lab := make([]int, len(bd.members))
		for i := range lab {
			lab[i] = i
		}
		per[bi] = lab
	}
	return per
}

// sweepMemoStats summarizes one memoized sweep's delta-vs-full
// accounting. Outcome counts are per (candidate × block) cell of the
// sweep grid: a full sweep re-cuts and re-scores every cell; the memo
// computes only misses (cut + score) and refreshes (score only, the
// cached labeling reused under a new far estimate) and serves every
// other cell from cache.
type sweepMemoStats struct {
	hits, refreshes, misses int64
	// rescoredBlocks is Σ over candidates of blocks whose labeling
	// changed at that height — the memo path's actual re-cut volume.
	rescoredBlocks int64
	// scoredPairs / savedPairs split the full sweep's per-height
	// within-block pair re-reads into performed vs. skipped.
	scoredPairs, savedPairs int64
}

// sweepBlockedCut selects the global cut height. At validation scale it
// defers to sweepBlockedCutExact (which may coarsen the blocks with
// missed threshold edges — the returned slice supersedes the caller's);
// beyond it, it sweeps the pooled per-block merge heights, memoized by
// default (sweepBlockedCutMemo) or exhaustively under fullSweep
// (sweepBlockedCutFull, the bit-identical reference). Returns the
// blocks to stitch with and their chosen per-block labelings.
func sweepBlockedCut(fs *FeatureSet, blocks []*blockDendrogram, linkage cluster.Linkage, nLive, maxCandidates int, tol float64, fullSweep bool, obs *blockedObs) (out []*blockDendrogram, per [][]int, height, sil float64, ms sweepMemoStats) {
	if nLive <= blockedExactSweepMaxN {
		// The validation-scale exact sweep has no per-height pooled
		// scoring, so it emits no sweep attribution or height events.
		out, per, height, sil = sweepBlockedCutExact(fs, blocks, linkage, maxCandidates, tol)
		return out, per, height, sil, ms
	}
	cands := pooledCutCandidates(blocks, maxCandidates)
	farD := blockedFar(fs, blocks)
	if fullSweep {
		out, per, height, sil = sweepBlockedCutFull(blocks, cands, farD, nLive, tol, obs)
		return out, per, height, sil, ms
	}
	return sweepBlockedCutMemo(blocks, cands, farD, nLive, tol, obs)
}

// sweepBlockedCutFull is the unmemoized pooled sweep: every candidate
// height re-cuts every block and re-scores the full blocked silhouette.
// O(heights × blocks) — it survives as the reference the memoized sweep
// is parity-tested against and as the bench baseline measuring what the
// memo saves (ClusterOptions.FullSweep).
func sweepBlockedCutFull(blocks []*blockDendrogram, cands []float64, farD float64, nLive int, tol float64, obs *blockedObs) (out []*blockDendrogram, per [][]int, height, sil float64) {
	obs.setHeightsTotal(len(cands))
	// Pairs one silhouette evaluation re-reads: every within-block pair,
	// identical for each valid height.
	var evalPairs int64
	if obs != nil {
		for _, bd := range blocks {
			m := int64(len(bd.members))
			evalPairs += m * (m - 1) / 2
		}
	}

	// Candidate heights are scored in parallel (each evaluation is
	// independent: cut every block, sum block silhouettes) and reduced
	// serially in ascending height order, so the selection is identical
	// to the serial loop. Per-height timings go straight to the atomic
	// sweep family; ledger events are buffered in evals and flushed
	// serially below in ascending height order.
	evals := make([]sweepEval, len(cands))
	if obs == nil {
		fanOut(len(cands), 0, func(ci int) {
			p, k := cutBlocksAt(blocks, cands[ci])
			if k < 2 || k >= nLive {
				evals[ci] = sweepEval{k: k}
				return
			}
			evals[ci] = sweepEval{sil: blockedSilhouette(blocks, p, farD, nLive), valid: true, k: k}
		})
	} else {
		fanOut(len(cands), 0, func(ci int) {
			start := time.Now()
			p, k := cutBlocksAt(blocks, cands[ci])
			if k >= 2 && k < nLive {
				evals[ci] = sweepEval{sil: blockedSilhouette(blocks, p, farD, nLive), valid: true, k: k}
			} else {
				evals[ci] = sweepEval{k: k}
			}
			obs.sweepEvaluated(cands[ci], time.Since(start).Nanoseconds())
		})
		for ci, e := range evals {
			scored := int64(0)
			if e.valid {
				scored = evalPairs
			}
			// The full sweep re-cuts every block at every height.
			obs.heightSwept(cands[ci], e.k, e.valid, e.sil, len(blocks), scored)
		}
	}
	best := selectSweepCut(evals, tol)
	if best < 0 {
		// Degenerate: no valid cut (e.g. nLive == 2). Fall back to
		// leaves, like the exact sweep.
		return blocks, leafPerBlocks(blocks), 0, 0
	}
	per, _ = cutBlocksAt(blocks, cands[best])
	return blocks, per, cands[best], evals[best].sil
}

// sweepBlockedCutMemo is the memoized pooled sweep. The invariant it
// exploits: a block's labeling — and therefore its blockSilhouetteSum
// contribution — only changes at that block's own merge heights, so a
// candidate height maps to a per-block segment (the count of merges at
// or below it) and the whole sweep grid of (candidate × block) cells
// collapses to Σ per-block segment crossings. Planning walks candidates
// and each block's sorted merges with two pointers (serial, cheap);
// only fresh (block, segment) cells are cut and rescored, in one
// parallel fan-out; the reduce pass then walks candidates in ascending
// order maintaining the cluster count and per-block contributions as
// running state, summing the global silhouette in ascending block order
// — the same accumulation order as blockedSilhouette — so labels, cut
// height, and silhouette are bit-identical to sweepBlockedCutFull.
// Memo entries persist on the blockDendrogram, so an incremental
// Recluster that reuses a clean block also reuses its swept
// contributions (a changed far estimate downgrades them to refreshes:
// the cached labeling is still reused, only the scoring reruns).
func sweepBlockedCutMemo(blocks []*blockDendrogram, cands []float64, farD float64, nLive int, tol float64, obs *blockedObs) (out []*blockDendrogram, per [][]int, height, sil float64, ms sweepMemoStats) {
	obs.setHeightsTotal(len(cands))
	if len(cands) == 0 {
		// No merges anywhere (all-singleton blocks): leaves.
		return blocks, leafPerBlocks(blocks), 0, 0, ms
	}
	multi := len(blocks) > 1

	// Planning (serial): find each block's segment crossings among the
	// candidates and the memo entry serving each crossing.
	type segChange struct {
		bi int
		m  *blockCutMemo
	}
	changedAt := make([][]segChange, len(cands))
	cur := make([]*blockCutMemo, len(blocks))
	type sweepTask struct {
		bd *blockDendrogram
		m  *blockCutMemo
		h  float64
	}
	// rescore fills one fresh/refreshed cell. kb comes from the
	// labeling, not from m − seg: the two differ when a sorted merge
	// list carries same-component no-op merges (an artifact of near-tie
	// inversions in the NN-chain order), and the full sweep counts the
	// labeling's clusters — so must the memo, or the reported k drifts
	// between the modes.
	rescore := func(t sweepTask) {
		if t.m.lab == nil {
			t.m.lab = t.bd.dend.CutByHeight(t.h)
		}
		kb := 0
		for _, l := range t.m.lab {
			if l+1 > kb {
				kb = l + 1
			}
		}
		t.m.kb = kb
		t.m.silSum = blockSilhouetteSum(t.bd, t.m.lab, t.m.farD, t.m.multi)
	}
	var fresh []sweepTask
	for bi, bd := range blocks {
		cur[bi] = bd.seg0()
		merges := bd.dend.Merges()
		seg, prev := 0, 0
		for ci, h := range cands {
			for seg < len(merges) && merges[seg].Distance <= h {
				seg++
			}
			if seg == prev {
				continue
			}
			m, outcome := bd.cutMemoAt(seg, farD, multi)
			switch outcome {
			case memoMiss:
				ms.misses++
				fresh = append(fresh, sweepTask{bd: bd, m: m, h: h})
			case memoRefresh:
				ms.refreshes++
				fresh = append(fresh, sweepTask{bd: bd, m: m, h: h})
			}
			changedAt[ci] = append(changedAt[ci], segChange{bi: bi, m: m})
			prev = seg
		}
	}
	ms.hits = int64(len(cands))*int64(len(blocks)) - ms.misses - ms.refreshes

	// Rescore (parallel): fill the fresh cells. Each task is attributed
	// to the height bucket of the candidate that first needed it.
	if obs == nil {
		fanOut(len(fresh), 0, func(ti int) {
			rescore(fresh[ti])
		})
	} else {
		fanOut(len(fresh), 0, func(ti int) {
			t := fresh[ti]
			start := time.Now()
			rescore(t)
			obs.sweepRescored(t.h, time.Since(start).Nanoseconds())
		})
	}

	// Reduce (serial, ascending height): apply each candidate's segment
	// crossings to the running per-block state. The cluster count is
	// exact integer bookkeeping over the per-block label counts (kb
	// deltas, not merge counts — see rescore), so k always equals what
	// cutBlocksAt would report, and the silhouette sums the per-block
	// contributions in block order, matching blockedSilhouette.
	pairsOf := make([]int64, len(blocks))
	var totalPairs int64
	for bi, bd := range blocks {
		m := int64(len(bd.members))
		pairsOf[bi] = m * (m - 1) / 2
		totalPairs += pairsOf[bi]
	}
	evals := make([]sweepEval, len(cands))
	k := nLive // seg0 everywhere: every member its own cluster
	for ci := range cands {
		var start time.Time
		if obs != nil {
			start = time.Now()
		}
		var changedPairs int64
		for _, ch := range changedAt[ci] {
			k += ch.m.kb - cur[ch.bi].kb
			cur[ch.bi] = ch.m
			changedPairs += pairsOf[ch.bi]
		}
		if k >= 2 && k < nLive {
			var total float64
			for _, m := range cur {
				total += m.silSum
			}
			evals[ci] = sweepEval{sil: total / float64(nLive), valid: true, k: k}
		} else {
			evals[ci] = sweepEval{k: k}
		}
		changed := len(changedAt[ci])
		ms.rescoredBlocks += int64(changed)
		ms.scoredPairs += changedPairs
		ms.savedPairs += totalPairs - changedPairs
		if obs != nil {
			obs.heightSweptMemo(cands[ci], evals[ci].k, evals[ci].valid, evals[ci].sil, changed, changedPairs, time.Since(start).Nanoseconds())
		}
	}
	obs.sweepMemo(ms)

	best := selectSweepCut(evals, tol)
	if best < 0 {
		return blocks, leafPerBlocks(blocks), 0, 0, ms
	}
	per, _ = cutBlocksAt(blocks, cands[best])
	return blocks, per, cands[best], evals[best].sil, ms
}

// recordBlockedPairs accounts exact-vs-pruned pair counts for the
// blocked path: within-block pairs were computed exactly, everything
// else was never touched.
func recordBlockedPairs(reg *telemetry.Registry, nLive int, comps [][]int) {
	if reg == nil {
		return
	}
	pairs := reg.Family("cluster_pairs", "kind")
	var exact int64
	for _, c := range comps {
		m := int64(len(c))
		exact += m * (m - 1) / 2
	}
	pairs.With("exact").Add(exact)
	pairs.With("pruned").Add(int64(nLive)*int64(nLive-1)/2 - exact)
}

// clusterWPNsBlocked is the batch entry point of the blocked path; see
// ClusterOptions.Blocked.
func clusterWPNsBlocked(fs *FeatureSet, opts ClusterOptions) *ClusterResult {
	st := newStageTimer(opts.Metrics, opts.Tracer, opts.parent, opts.Ledger, opts.prog)
	obs := newBlockedObs(opts.Metrics, opts.Ledger, opts.prog)
	n := len(fs.Records)
	bands, link, distT := blockedParams(opts.Prune)

	done := st.stage("blocks")
	tally := obs.tally()
	comps := blockedComponents(fs, bands, link, distT, tally)
	done()
	obs.recordTally(tally)
	recordBlockedPairs(opts.Metrics, n, comps)
	if opts.prog != nil {
		var exact int64
		for _, c := range comps {
			m := int64(len(c))
			exact += m * (m - 1) / 2
		}
		opts.prog.addPairs(exact, int64(n)*int64(n-1)/2-exact)
	}

	done = st.stage("block_linkage")
	blocks := buildBlockDendrograms(fs, comps, opts.Linkage, obs)
	done()

	done = st.stage("cut")
	var per [][]int
	var height, sil float64
	if opts.FixedCutHeight > 0 {
		var k int
		per, k = cutBlocksAt(blocks, opts.FixedCutHeight)
		height = opts.FixedCutHeight
		if k >= 2 {
			sil = blockedSilhouette(blocks, per, blockedFar(fs, blocks), n)
		}
	} else {
		blocks, per, height, sil, _ = sweepBlockedCut(fs, blocks, opts.Linkage, n, opts.MaxCutCandidates, opts.conservativeTol(), opts.FullSweep, obs)
	}
	labels := stitchBlockedLabels(n, blocks, per)
	done()

	if opts.Ledger != nil {
		opts.Ledger.CutChosen(height, numClusters(labels), sil)
	}
	res := finishClusterResult(fs, labels, height, sil)
	if opts.BuildMedoids {
		res.Medoids = newMedoidIndex(fs, blockMedoids(blocks, per, labels), height, sil, bands)
	}
	return res
}
