package core

import (
	"runtime"
	"sync"
)

// fanOut runs f(i) for every i in [0, n) across a bounded worker pool,
// workers striding the index space (the textmine kernel's discipline).
// Callers must write results into slot-indexed slices so the output is
// independent of goroutine scheduling. workers <= 0 defaults to
// GOMAXPROCS; workers == 1 (or n < 2) runs inline with no goroutines.
func fanOut(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				f(i)
			}
		}(w)
	}
	wg.Wait()
}
