package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
)

// Mining ledger event kinds. The ledger is the mining pipeline's
// mirror of the fleet event ledger: an append-only, seq-numbered JSONL
// record of what the clustering run did, byte-stable across reruns at
// a fixed seed. Events deliberately carry no wall-clock time — timing
// lives in the telemetry snapshot (which is not byte-stable); the
// ledger records *what happened in what order*, so two runs can be
// diffed directly.
const (
	// EvStageBegin / EvStageEnd bracket one pipeline stage
	// ("featurize", "blocks", "cut", ...). Attrs: stage.
	EvStageBegin = "stage_begin"
	EvStageEnd   = "stage_end"
	// EvBlockClustered records one LSH block's exact dendrogram being
	// built. Attrs: block (index in canonical order), size.
	EvBlockClustered = "block_clustered"
	// EvHeightSwept records one pooled-sweep candidate height being
	// scored. Attrs: height, k (clusters at that cut), valid (whether a
	// silhouette was computable), silhouette, changed (blocks whose
	// labeling changed at this height — every block on the full sweep,
	// only segment crossings on the memoized one), scored_pairs
	// (within-block pairs the scoring re-read). All attrs are
	// structural, independent of memo/cache state, so cold and warm
	// sweeps ledger identically.
	EvHeightSwept = "height_swept"
	// EvSweepMemo summarizes one memoized sweep's delta-vs-full
	// accounting. Attrs: hits, refreshes, misses (per candidate × block
	// sweep-grid cell), rescored_blocks, saved_pairs. Deterministic
	// across reruns: memo state depends only on the run's own history.
	EvSweepMemo = "sweep_memo"
	// EvCutChosen records the final cut decision. Attrs: height, k,
	// silhouette (empty when the exact sweep below the crossover chose
	// the cut and no pooled scoring ran).
	EvCutChosen = "cut_chosen"
	// EvIncrementalAdd summarizes one incremental ingestion batch.
	// Attrs: count, assigned (to existing medoids), provisional.
	EvIncrementalAdd = "incremental_add"
	// EvRecluster records one IncrementalClusterer.Recluster call.
	// Attrs: blocks, reused, rebuilt, clusters.
	EvRecluster = "recluster"
)

// MiningEvent is one ledger line. Attrs values are pre-formatted
// strings so encoding is trivially deterministic (ints via
// strconv.Itoa, floats via strconv.FormatFloat 'g' -1).
type MiningEvent struct {
	Seq   int               `json:"seq"`
	Kind  string            `json:"kind"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// MiningLedger accumulates mining events in memory. All appends happen
// on serial code paths (stage boundaries, post-fan-out flushes in
// canonical order), but the mutex keeps it safe if an instrumented
// path ever runs concurrently. A nil *MiningLedger no-ops everywhere —
// same contract as nil telemetry — and, because attr maps are built
// inside the append methods, the disabled path allocates nothing.
type MiningLedger struct {
	mu     sync.Mutex
	events []MiningEvent
}

// NewMiningLedger returns an empty ledger.
func NewMiningLedger() *MiningLedger { return &MiningLedger{} }

// append assigns the next seq and stores the event.
func (l *MiningLedger) append(kind string, attrs map[string]string) {
	l.mu.Lock()
	l.events = append(l.events, MiningEvent{Seq: len(l.events), Kind: kind, Attrs: attrs})
	l.mu.Unlock()
}

// StageBegin / StageEnd bracket a pipeline stage.
func (l *MiningLedger) StageBegin(stage string) {
	if l == nil {
		return
	}
	l.append(EvStageBegin, map[string]string{"stage": stage})
}

func (l *MiningLedger) StageEnd(stage string) {
	if l == nil {
		return
	}
	l.append(EvStageEnd, map[string]string{"stage": stage})
}

// BlockClustered records one block's dendrogram build.
func (l *MiningLedger) BlockClustered(block, size int) {
	if l == nil {
		return
	}
	l.append(EvBlockClustered, map[string]string{
		"block": strconv.Itoa(block),
		"size":  strconv.Itoa(size),
	})
}

// HeightSwept records one scored candidate height.
func (l *MiningLedger) HeightSwept(height float64, k int, valid bool, silhouette float64, changedBlocks int, scoredPairs int64) {
	if l == nil {
		return
	}
	l.append(EvHeightSwept, map[string]string{
		"height":       strconv.FormatFloat(height, 'g', -1, 64),
		"k":            strconv.Itoa(k),
		"valid":        strconv.FormatBool(valid),
		"silhouette":   strconv.FormatFloat(silhouette, 'g', -1, 64),
		"changed":      strconv.Itoa(changedBlocks),
		"scored_pairs": strconv.FormatInt(scoredPairs, 10),
	})
}

// SweepMemo summarizes one memoized sweep's delta-vs-full accounting.
func (l *MiningLedger) SweepMemo(hits, refreshes, misses, rescoredBlocks, savedPairs int64) {
	if l == nil {
		return
	}
	l.append(EvSweepMemo, map[string]string{
		"hits":            strconv.FormatInt(hits, 10),
		"refreshes":       strconv.FormatInt(refreshes, 10),
		"misses":          strconv.FormatInt(misses, 10),
		"rescored_blocks": strconv.FormatInt(rescoredBlocks, 10),
		"saved_pairs":     strconv.FormatInt(savedPairs, 10),
	})
}

// CutChosen records the final cut. silhouette may be NaN when the
// exact-sweep path picked the cut without pooled scoring; it is
// formatted as "NaN" then, which is fine — attrs are strings.
func (l *MiningLedger) CutChosen(height float64, k int, silhouette float64) {
	if l == nil {
		return
	}
	l.append(EvCutChosen, map[string]string{
		"height":     strconv.FormatFloat(height, 'g', -1, 64),
		"k":          strconv.Itoa(k),
		"silhouette": strconv.FormatFloat(silhouette, 'g', -1, 64),
	})
}

// IncrementalAdd summarizes one ingestion batch.
func (l *MiningLedger) IncrementalAdd(count, assigned, provisional int) {
	if l == nil {
		return
	}
	l.append(EvIncrementalAdd, map[string]string{
		"count":       strconv.Itoa(count),
		"assigned":    strconv.Itoa(assigned),
		"provisional": strconv.Itoa(provisional),
	})
}

// Recluster records one dirty-block recluster round.
func (l *MiningLedger) Recluster(blocks, reused, rebuilt, clusters int) {
	if l == nil {
		return
	}
	l.append(EvRecluster, map[string]string{
		"blocks":   strconv.Itoa(blocks),
		"reused":   strconv.Itoa(reused),
		"rebuilt":  strconv.Itoa(rebuilt),
		"clusters": strconv.Itoa(clusters),
	})
}

// Events returns a copy of the accumulated events.
func (l *MiningLedger) Events() []MiningEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]MiningEvent, len(l.events))
	copy(out, l.events)
	return out
}

// WriteMiningLedger writes the events as one JSON object per line.
// Attr keys are emitted in sorted order (json.Marshal sorts map keys),
// so the output is byte-deterministic for identical event sequences.
func WriteMiningLedger(path string, events []MiningEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create mining ledger: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			f.Close()
			return fmt.Errorf("core: encode mining event: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: flush mining ledger: %w", err)
	}
	return f.Close()
}

// ReadMiningLedger reads a ledger file back, validating seq
// monotonicity.
func ReadMiningLedger(path string) ([]MiningEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open mining ledger: %w", err)
	}
	defer f.Close()
	var out []MiningEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev MiningEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("core: parse mining ledger line %d: %w", len(out), err)
		}
		if ev.Seq != len(out) {
			return nil, fmt.Errorf("core: mining ledger seq gap: got %d want %d", ev.Seq, len(out))
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read mining ledger: %w", err)
	}
	return out, nil
}

// numClusters counts distinct non-negative labels — the k reported in
// cut events.
func numClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

// LedgerEventCounts tallies events by kind — handy for tests and the
// smoke script.
func LedgerEventCounts(events []MiningEvent) map[string]int {
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	return counts
}
