package core

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pushadminer/internal/cluster"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/textmine"
	"pushadminer/internal/webeco"
)

// memoBlocksFor builds the blocked substrate (components + per-block
// dendrograms) for a feature set, the way clusterWPNsBlocked does.
func memoBlocksFor(fs *FeatureSet, linkage cluster.Linkage) []*blockDendrogram {
	bands, link, distT := blockedParams(PruneOptions{})
	comps := blockedComponents(fs, bands, link, distT, nil)
	return buildBlockDendrograms(fs, comps, linkage, nil)
}

// tieHeavyFS builds a corpus of duplicated records, so block
// dendrograms are dominated by zero-distance tied merges — the shape
// most likely to expose segment-boundary (merges at exactly the
// candidate height) disagreements between the sweeps.
func tieHeavyFS(t *testing.T, seed int64, distinct, copies int) *FeatureSet {
	t.Helper()
	base := SynthWPNRecords(seed, distinct)
	recs := base[:0:0]
	for c := 0; c < copies; c++ {
		recs = append(recs, base...)
	}
	fs, err := ExtractFeatures(recs, FeatureOptions{
		Word2Vec: textmine.Word2VecConfig{Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// sweepsAgree asserts the two sweeps' outputs are bit-identical:
// per-block labelings, cut height, silhouette, and the stitched global
// labels.
func sweepsAgree(t *testing.T, name string, fs *FeatureSet,
	fullPer, memoPer [][]int, fullH, memoH, fullS, memoS float64, blocks []*blockDendrogram) {
	t.Helper()
	if fullH != memoH || fullS != memoS {
		t.Errorf("%s: memo cut %v/%v, full cut %v/%v", name, memoH, memoS, fullH, fullS)
	}
	if !reflect.DeepEqual(fullPer, memoPer) {
		t.Errorf("%s: per-block labelings differ", name)
	}
	full := stitchBlockedLabels(len(fs.Records), blocks, fullPer)
	memo := stitchBlockedLabels(len(fs.Records), blocks, memoPer)
	if !sameLabels(full, memo) {
		t.Errorf("%s: stitched labels differ", name)
	}
}

// TestSweepMemoParityMatrix pins the tentpole invariant: the memoized
// pooled sweep is bit-identical (labels, cut height, silhouette) to the
// full pooled sweep across seeds × linkages × block shapes. The sweeps
// are called directly so the matrix runs above-crossover code on
// validation-scale corpora.
func TestSweepMemoParityMatrix(t *testing.T) {
	linkages := []struct {
		name string
		l    cluster.Linkage
	}{
		{"average", cluster.Average},
		{"single", cluster.Single},
		{"complete", cluster.Complete},
	}
	shapes := []struct {
		name   string
		fs     func(t *testing.T, seed int64) *FeatureSet
		blocks func(fs *FeatureSet, linkage cluster.Linkage) []*blockDendrogram
	}{
		{"banded", func(t *testing.T, seed int64) *FeatureSet {
			return parityFS(t, seed, 150)
		}, memoBlocksFor},
		{"single-block", func(t *testing.T, seed int64) *FeatureSet {
			return parityFS(t, seed, 60)
		}, func(fs *FeatureSet, linkage cluster.Linkage) []*blockDendrogram {
			all := make([]int, len(fs.Records))
			for i := range all {
				all[i] = i
			}
			return buildBlockDendrograms(fs, [][]int{all}, linkage, nil)
		}},
		{"all-singleton", func(t *testing.T, seed int64) *FeatureSet {
			return parityFS(t, seed, 40)
		}, func(fs *FeatureSet, linkage cluster.Linkage) []*blockDendrogram {
			comps := make([][]int, len(fs.Records))
			for i := range comps {
				comps[i] = []int{i}
			}
			return buildBlockDendrograms(fs, comps, linkage, nil)
		}},
		{"tie-heavy", func(t *testing.T, seed int64) *FeatureSet {
			return tieHeavyFS(t, seed, 30, 4)
		}, memoBlocksFor},
	}

	for _, seed := range []int64{1, 2} {
		for _, lk := range linkages {
			for _, shape := range shapes {
				name := shape.name + "/" + lk.name
				fs := shape.fs(t, seed)
				blocks := shape.blocks(fs, lk.l)
				nLive := len(fs.Records)
				cands := pooledCutCandidates(blocks, 64)
				farD := blockedFar(fs, blocks)
				const tol = 0.15

				_, fullPer, fullH, fullS := sweepBlockedCutFull(blocks, cands, farD, nLive, tol, nil)
				_, memoPer, memoH, memoS, ms := sweepBlockedCutMemo(blocks, cands, farD, nLive, tol, nil)
				sweepsAgree(t, name, fs, fullPer, memoPer, fullH, memoH, fullS, memoS, blocks)
				if len(cands) > 0 && ms.misses == 0 {
					t.Errorf("%s: cold sweep recorded no memo misses", name)
				}

				// Warm re-sweep over the same blocks: every cell serves
				// from the memo, output still bit-identical.
				_, warmPer, warmH, warmS, warm := sweepBlockedCutMemo(blocks, cands, farD, nLive, tol, nil)
				sweepsAgree(t, name+"/warm", fs, fullPer, warmPer, fullH, warmH, fullS, warmS, blocks)
				if warm.misses != 0 || warm.refreshes != 0 {
					t.Errorf("%s: warm sweep recomputed %d misses, %d refreshes; want 0",
						name, warm.misses, warm.refreshes)
				}
				if want := int64(len(cands)) * int64(len(blocks)); warm.hits != want {
					t.Errorf("%s: warm sweep hits = %d, want %d", name, warm.hits, want)
				}

				// A changed far estimate downgrades cached cells to
				// refreshes (labelings reused, contributions rescored) —
				// and the refreshed sweep must agree with a fresh full
				// sweep under the same farD.
				farD2 := farD + 0.01
				_, fullPer2, fullH2, fullS2 := sweepBlockedCutFull(blocks, cands, farD2, nLive, tol, nil)
				_, memoPer2, memoH2, memoS2, rf := sweepBlockedCutMemo(blocks, cands, farD2, nLive, tol, nil)
				sweepsAgree(t, name+"/refresh", fs, fullPer2, memoPer2, fullH2, memoH2, fullS2, memoS2, blocks)
				if rf.misses != 0 {
					t.Errorf("%s: farD change caused %d misses, want refreshes only", name, rf.misses)
				}
				if len(cands) > 0 && len(blocks) > 1 && rf.refreshes == 0 {
					t.Errorf("%s: farD change caused no refreshes", name)
				}
			}
		}
	}
}

// TestSweepMemoObservationParity asserts the memoized sweep's output is
// identical with every sink attached and with none, and that cold and
// warm sweeps ledger identically — heightSwept attrs are structural
// (segment crossings), not memo-state-dependent.
func TestSweepMemoObservationParity(t *testing.T) {
	fs := parityFS(t, 1, 150)
	nLive := len(fs.Records)
	const tol = 0.15

	plainBlocks := memoBlocksFor(fs, cluster.Average)
	cands := pooledCutCandidates(plainBlocks, 64)
	farD := blockedFar(fs, plainBlocks)
	_, plainPer, plainH, plainS, _ := sweepBlockedCutMemo(plainBlocks, cands, farD, nLive, tol, nil)

	sweepOnce := func(blocks []*blockDendrogram) ([]MiningEvent, [][]int, float64, float64) {
		led := NewMiningLedger()
		obs := newBlockedObs(telemetry.New(), led, nil)
		_, per, h, s, _ := sweepBlockedCutMemo(blocks, cands, farD, nLive, tol, obs)
		return led.Events(), per, h, s
	}
	obsBlocks := memoBlocksFor(fs, cluster.Average)
	coldEvents, obsPer, obsH, obsS := sweepOnce(obsBlocks)
	sweepsAgree(t, "observed", fs, plainPer, obsPer, plainH, obsH, plainS, obsS, plainBlocks)

	// The per-height sweep attribution is structural (segment crossings),
	// never memo-state-dependent: the warm re-sweep ledgers the exact
	// same height_swept stream even though it recomputes nothing.
	warmEvents, _, _, _ := sweepOnce(obsBlocks) // same blocks: memo warm
	onlyHeights := func(evs []MiningEvent) []MiningEvent {
		var out []MiningEvent
		for _, ev := range evs {
			if ev.Kind == EvHeightSwept {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(onlyHeights(coldEvents), onlyHeights(warmEvents)) {
		t.Error("cold and warm memoized sweeps produced different height_swept ledger events")
	}
	counts := LedgerEventCounts(coldEvents)
	if counts[EvHeightSwept] != len(cands) {
		t.Errorf("ledger has %d height_swept events, want %d", counts[EvHeightSwept], len(cands))
	}
	if counts[EvSweepMemo] != 1 {
		t.Errorf("ledger has %d sweep_memo events, want 1", counts[EvSweepMemo])
	}
	for _, ev := range coldEvents {
		if ev.Kind == EvHeightSwept && ev.Attrs["changed"] == "" {
			t.Fatalf("height_swept event missing changed attr: %+v", ev)
		}
	}
}

// TestBlockedFullSweepOptionParity runs the blocked path end-to-end
// above the validation-scale crossover with and without FullSweep and
// asserts identical results — the dispatcher-level version of the
// parity matrix — and that the incremental replay (whose final
// Reclusters run the memoized sweep, reusing memos across calls)
// converges exactly to both.
func TestBlockedFullSweepOptionParity(t *testing.T) {
	if testing.Short() {
		t.Skip("above-crossover corpus is slow; skipping in -short")
	}
	fs := parityFS(t, 1, blockedExactSweepMaxN+88) // 600: pooled sweep engages
	memo := ClusterWPNs(fs, ClusterOptions{Blocked: true})
	full := ClusterWPNs(fs, ClusterOptions{Blocked: true, FullSweep: true})
	if !sameLabels(memo.Labels, full.Labels) {
		t.Error("memoized and full sweeps produced different labels")
	}
	if memo.CutHeight != full.CutHeight || memo.Silhouette != full.Silhouette {
		t.Errorf("memo cut %v/%v, full cut %v/%v",
			memo.CutHeight, memo.Silhouette, full.CutHeight, full.Silhouette)
	}

	inc := NewIncrementalClusterer(fs, ClusterOptions{})
	n := len(fs.Records)
	for start := 0; start < n; start += 200 {
		end := start + 200
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			inc.Add(i)
		}
		inc.Recluster()
	}
	// A second Recluster with no adds: every block reuses its cached
	// dendrogram and its cut memos — pure hits (no refreshes; the far
	// estimate is unchanged), same result. SweepRescoredBlocks keeps
	// growing because it counts structural segment crossings, not
	// recompute work.
	before := inc.Stats()
	res := inc.Recluster()
	after := inc.Stats()
	if !sameLabels(res.Labels, memo.Labels) {
		t.Error("incremental replay did not converge to the batch labels")
	}
	if res.CutHeight != memo.CutHeight || res.Silhouette != memo.Silhouette {
		t.Errorf("incremental cut %v/%v, batch %v/%v",
			res.CutHeight, res.Silhouette, memo.CutHeight, memo.Silhouette)
	}
	if after.SweepMemoHits <= before.SweepMemoHits {
		t.Error("warm Recluster recorded no sweep memo hits")
	}
	if after.SweepMemoRefreshes != before.SweepMemoRefreshes {
		t.Errorf("warm Recluster recorded %d refreshes, want 0",
			after.SweepMemoRefreshes-before.SweepMemoRefreshes)
	}
}

// TestMedoidIndexRoundTrip pins the persisted classify state: the
// incremental clusterer exports its medoids + cut, the index survives a
// JSON round-trip byte-identically, Classify answers like the live
// clusterer, and a fresh clusterer restored from the file Add-classifies
// arrivals before any Recluster.
func TestMedoidIndexRoundTrip(t *testing.T) {
	fs := parityFS(t, 1, 150)
	opts := ClusterOptions{}
	inc := NewIncrementalClusterer(fs, opts)
	for i := range fs.Records {
		inc.Add(i)
	}
	res := inc.Recluster()

	idx := inc.MedoidIndex()
	if idx == nil {
		t.Fatal("MedoidIndex nil after Recluster")
	}
	if idx.CutHeight != res.CutHeight || idx.Silhouette != res.Silhouette {
		t.Errorf("index cut %v/%v, result %v/%v", idx.CutHeight, idx.Silhouette, res.CutHeight, res.Silhouette)
	}
	if idx.Records != len(fs.Records) || len(idx.Medoids) == 0 {
		t.Fatalf("index shape: records=%d medoids=%d", idx.Records, len(idx.Medoids))
	}
	for i := 1; i < len(idx.Medoids); i++ {
		if idx.Medoids[i-1].Label >= idx.Medoids[i].Label {
			t.Fatal("medoids not ascending by label")
		}
	}

	path := filepath.Join(t.TempDir(), "medoids.json")
	if err := SaveMedoidIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveMedoidIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("SaveMedoidIndex is not byte-deterministic")
	}
	loaded, err := LoadMedoidIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Medoids, idx.Medoids) || loaded.CutHeight != idx.CutHeight {
		t.Error("round-trip changed the index")
	}

	// Classify agrees between exported and loaded indexes, and every
	// medoid record classifies to its own campaign at distance 0.
	for i := range fs.Records {
		l1, d1 := idx.Classify(fs, i)
		l2, d2 := loaded.Classify(fs, i)
		if l1 != l2 || d1 != d2 {
			t.Fatalf("record %d: exported classify (%d,%v), loaded (%d,%v)", i, l1, d1, l2, d2)
		}
	}
	for _, me := range idx.Medoids {
		if l, d := loaded.Classify(fs, me.Record); l != me.Label || d > 1e-9 {
			t.Errorf("medoid %d classifies to (%d,%v), want (%d,~0)", me.Record, l, d, me.Label)
		}
	}

	// A fresh clusterer restored from the file answers arrivals before
	// any Recluster of its own — the between-re-mines service posture.
	fresh := NewIncrementalClusterer(fs, opts)
	if err := fresh.RestoreMedoidIndex(loaded); err != nil {
		t.Fatal(err)
	}
	assigned := 0
	for _, me := range idx.Medoids {
		if got := fresh.Add(me.Record); got != me.Label {
			t.Errorf("restored Add(%d) = %d, want medoid label %d", me.Record, got, me.Label)
		}
		assigned++
	}
	if assigned == 0 {
		t.Fatal("no medoid records to classify")
	}

	// Size mismatch is refused: the index only means anything against
	// the feature set it was mined from.
	small := parityFS(t, 2, 40)
	other := NewIncrementalClusterer(small, opts)
	if err := other.RestoreMedoidIndex(loaded); err == nil {
		t.Error("RestoreMedoidIndex accepted an index from a different feature set size")
	}
}

// TestBlockedBatchMedoidIndex covers the batch path's BuildMedoids
// option: the blocked result carries an index consistent with its own
// labels.
func TestBlockedBatchMedoidIndex(t *testing.T) {
	fs := parityFS(t, 1, 150)
	res := ClusterWPNs(fs, ClusterOptions{Blocked: true, BuildMedoids: true})
	if res.Medoids == nil {
		t.Fatal("BuildMedoids set but result has no medoid index")
	}
	if res.Medoids.CutHeight != res.CutHeight {
		t.Errorf("index cut %v, result cut %v", res.Medoids.CutHeight, res.CutHeight)
	}
	for _, me := range res.Medoids.Medoids {
		if res.Labels[me.Record] != me.Label {
			t.Errorf("medoid %d carries label %d, labeling says %d", me.Record, me.Label, res.Labels[me.Record])
		}
	}
	if plain := ClusterWPNs(fs, ClusterOptions{Blocked: true}); plain.Medoids != nil {
		t.Error("medoid index built without BuildMedoids")
	}
}

// TestDedupeCutHeights (core-side) asserts the pooled candidate source
// applies the tolerance dedupe: two merge heights closer than the
// tolerance yield one candidate.
func TestPooledCandidateDedupe(t *testing.T) {
	in := []float64{0.1, 0.1 + 1e-12, 0.1 + 2e-12, 0.2, 0.2 + 5e-10, 0.3}
	got := cluster.DedupeCutHeights(in, sweepHeightDedupeTol)
	want := []float64{0.1, 0.2, 0.3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DedupeCutHeights = %v, want %v", got, want)
	}
	if out := cluster.DedupeCutHeights([]float64{0.1, 0.2}, 0); len(out) != 2 {
		t.Errorf("tol=0 must disable dedupe, got %v", out)
	}
	if out := cluster.DedupeCutHeights(nil, 1e-9); out != nil {
		t.Errorf("empty input: got %v", out)
	}
}

// TestSweepBucketNoUnlistedKeys drives the sweep instruments with
// out-of-range and non-finite heights and asserts the snapshot carries
// only preresolved bucket keys — the satellite fix for heights >= 1.0
// (and NaN, whose float-to-int conversion is implementation-defined)
// minting unlisted keys.
func TestSweepBucketNoUnlistedKeys(t *testing.T) {
	for _, c := range []struct {
		h    float64
		want string
	}{
		{math.NaN(), "1.0+"},
		{math.Inf(1), "1.0+"},
		{math.Inf(-1), "0.0-0.1"},
		{math.Nextafter(1, 0), "0.9-1.0"},
		{math.Nextafter(1, 2), "1.0+"},
		{1.7, "1.0+"},
	} {
		if got := sweepHeightBucket(c.h); got != c.want {
			t.Errorf("sweepHeightBucket(%v) = %q, want %q", c.h, got, c.want)
		}
	}

	reg := telemetry.New()
	obs := newBlockedObs(reg, nil, nil)
	for _, h := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 1.0, 2.5, 0.55} {
		obs.sweepRescored(h, 1)
		obs.heightSweptMemo(h, 2, true, 0.5, 1, 1, 1)
		obs.sweepEvaluated(h, 1)
	}
	listed := map[string]bool{}
	for _, b := range sweepBucketNames {
		listed[b] = true
	}
	snap := reg.Snapshot()
	for _, fam := range []string{"mining_sweep_ns", "mining_sweep_blocks"} {
		for key := range snap.Families[fam] {
			if !listed[key] {
				t.Errorf("%s minted unlisted key %q", fam, key)
			}
		}
	}
}

// TestSweepMemoKParityInversionCorpus pins memo-vs-full k agreement on
// a corpus whose dendrograms carry near-tie merge inversions. The
// NN-chain stable sort in cluster.sortMerges can order a consuming
// merge before its creator when two distances differ only at float32
// granularity; the renumbering then substitutes leaf 0 for the missing
// internal id, and the resulting merge is a same-component no-op at
// cut time. A merge-count-based k (m − applied merges) overstates the
// cluster count on such blocks, so both sweeps must derive k from the
// labeling itself. This study corpus (seed 7, scale 0.03, 3 days) is
// the smallest known reproduction; the ledger comparison below is the
// regression the bug originally escaped through — the CLI's
// deterministic mining ledgers diverging between -full-sweep and the
// memoized default.
func TestSweepMemoKParityInversionCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("study-corpus build is slow; skipping in -short")
	}
	cfg := StudyConfig{
		Eco:              webeco.Config{Seed: 7, Scale: 0.03},
		CollectionWindow: 3 * 24 * time.Hour,
	}
	cfg.Pipeline.Cluster.Blocked = true
	study, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	fs := study.Analysis.FS
	nLive := len(fs.Records)
	const tol = 0.15

	// Independent block sets per mode: the full sweep must not observe
	// (or warm) the memo sweep's cached cells.
	fullBlocks := memoBlocksFor(fs, cluster.Average)
	memoBlocks := memoBlocksFor(fs, cluster.Average)
	cands := pooledCutCandidates(fullBlocks, 64)
	farD := blockedFar(fs, fullBlocks)

	// Soft arming check: the regression is only exercised while the
	// corpus still contains a duplicate-child (no-op merge) block. If a
	// future sortMerges fix disarms it, the parity assertions below
	// stay valid — just no longer load-bearing.
	armed := 0
	for _, bd := range fullBlocks {
		seen := make(map[int]int)
		dup := false
		for _, m := range bd.dend.Merges() {
			seen[m.A]++
			seen[m.B]++
			if seen[m.A] > 1 || seen[m.B] > 1 {
				dup = true
			}
		}
		if dup {
			armed++
		}
	}
	if armed == 0 {
		t.Log("corpus no longer carries a no-op-merge block; k-parity test is disarmed (harmless if sortMerges was fixed)")
	}

	sweepLedger := func(run func(obs *blockedObs)) []MiningEvent {
		led := NewMiningLedger()
		obs := newBlockedObs(telemetry.New(), led, nil)
		run(obs)
		return led.Events()
	}
	var fullPer, memoPer [][]int
	var fullH, memoH, fullS, memoS float64
	fullEvents := sweepLedger(func(obs *blockedObs) {
		_, fullPer, fullH, fullS = sweepBlockedCutFull(fullBlocks, cands, farD, nLive, tol, obs)
	})
	memoEvents := sweepLedger(func(obs *blockedObs) {
		_, memoPer, memoH, memoS, _ = sweepBlockedCutMemo(memoBlocks, cands, farD, nLive, tol, obs)
	})
	sweepsAgree(t, "inversion corpus", fs, fullPer, memoPer, fullH, memoH, fullS, memoS, fullBlocks)

	// height_swept semantic attrs (height, k, valid, silhouette) must
	// match exactly; changed/scored_pairs legitimately differ — they
	// report actual per-mode work, not the cut.
	semantic := func(evs []MiningEvent) []map[string]string {
		var out []map[string]string
		for _, ev := range evs {
			if ev.Kind != EvHeightSwept {
				continue
			}
			attrs := make(map[string]string, len(ev.Attrs))
			for k, v := range ev.Attrs {
				if k == "changed" || k == "scored_pairs" {
					continue
				}
				attrs[k] = v
			}
			out = append(out, attrs)
		}
		return out
	}
	fullSem, memoSem := semantic(fullEvents), semantic(memoEvents)
	if len(fullSem) != len(cands) || len(memoSem) != len(cands) {
		t.Fatalf("height_swept counts: full %d, memo %d, want %d", len(fullSem), len(memoSem), len(cands))
	}
	for i := range fullSem {
		if !reflect.DeepEqual(fullSem[i], memoSem[i]) {
			t.Errorf("height_swept[%d] diverges between modes:\n  full: %v\n  memo: %v", i, fullSem[i], memoSem[i])
		}
	}
}
