package core

import (
	"strings"
	"testing"

	"pushadminer/internal/webeco"
)

// runSmallStudy runs a full end-to-end study at test scale, cached
// across tests in this file.
var smallStudy *Study

func getStudy(t *testing.T) *Study {
	t.Helper()
	if smallStudy != nil {
		return smallStudy
	}
	s, err := RunStudy(StudyConfig{
		Eco: webeco.Config{Seed: 2, Scale: 0.006},
	})
	if err != nil {
		t.Fatal(err)
	}
	smallStudy = s
	return s
}

func TestStudyEndToEnd(t *testing.T) {
	s := getStudy(t)
	r := s.Analysis.Report
	if r.TotalCollected == 0 || r.ValidLanding == 0 {
		t.Fatalf("empty study: %+v", r)
	}
	if r.ValidLanding >= r.TotalCollected {
		t.Errorf("valid landings (%d) should be a subset of collected (%d)", r.ValidLanding, r.TotalCollected)
	}
	if r.Clusters == 0 || r.AdCampaignClusters == 0 {
		t.Fatalf("no campaigns discovered: %+v", r)
	}
	if r.TotalAds == 0 {
		t.Fatal("no WPN ads identified")
	}
	frac := r.MaliciousAdFraction()
	if frac < 0.25 || frac > 0.85 {
		t.Errorf("malicious ad fraction = %.2f, want in paper-like band (paper: 0.51)", frac)
	}
	if r.MaliciousCampaigns == 0 {
		t.Error("no malicious campaigns")
	}
	if r.MetaClusters == 0 || r.MetaClusters >= r.Clusters {
		t.Errorf("meta clusters = %d (clusters %d); meta-clustering should consolidate", r.MetaClusters, r.Clusters)
	}
	t.Logf("report: %+v", r)
}

func TestStudyMobileTailoring(t *testing.T) {
	s := getStudy(t)
	if s.Mobile == nil || len(s.Mobile.Records) == 0 {
		t.Fatal("no mobile records")
	}
	mobileOnly := 0
	for _, r := range s.Mobile.Records {
		if strings.Contains(r.Title, "Missed call") || strings.Contains(r.Title, "package") ||
			strings.Contains(r.Title, "WhatsApp") || strings.Contains(r.Title, "Voicemail") {
			mobileOnly++
		}
	}
	if mobileOnly == 0 {
		t.Error("no mobile-tailored messages in mobile crawl")
	}
}

func TestStudyPerNetworkDistribution(t *testing.T) {
	s := getStudy(t)
	if len(s.PerNetwork) < 2 {
		t.Fatalf("per-network stats too small: %+v", s.PerNetwork)
	}
	abused := 0
	for _, ns := range s.PerNetwork {
		if ns.MaliciousAds > ns.Ads {
			t.Errorf("network %s: malicious %d > ads %d", ns.Network, ns.MaliciousAds, ns.Ads)
		}
		if ns.MaliciousAds > 0 {
			abused++
		}
	}
	if abused < 2 {
		t.Errorf("only %d networks carry malicious ads; Figure 6 shows widespread abuse", abused)
	}
	// Sorted descending by ad count.
	for i := 1; i < len(s.PerNetwork); i++ {
		if s.PerNetwork[i].Ads > s.PerNetwork[i-1].Ads {
			t.Error("per-network stats not sorted")
		}
	}
}

func TestStudyAdBlockers(t *testing.T) {
	s := getStudy(t)
	stats := s.EvaluateAdBlockers()
	if len(stats) != 3 {
		t.Fatalf("ad blocker stats = %d entries", len(stats))
	}
	easylist, ext1 := stats[0], stats[1]
	if easylist.Total == 0 {
		t.Fatal("no SW requests evaluated")
	}
	// Extensions cannot see SW traffic: zero blocked.
	if ext1.Blocked != 0 {
		t.Errorf("extension blocked %d SW requests; should be blind", ext1.Blocked)
	}
	// EasyList direct matching catches only a small fraction.
	// The paper reports <2%; at this tiny test scale the per-network
	// minimum site counts inflate the small networks' share, so allow a
	// wider band (the default-scale benches verify the <2% shape).
	frac := float64(easylist.Blocked) / float64(easylist.Total)
	if frac > 0.15 {
		t.Errorf("EasyList matched %.1f%% of SW requests, want small (<15%%)", 100*frac)
	}
	t.Logf("easylist: %+v", easylist.Stats)
}

func TestStudyCostEstimate(t *testing.T) {
	s := getStudy(t)
	est := s.EstimateAdvertiserCost()
	if est.Domains == 0 {
		t.Fatal("no benign ad domains priced")
	}
	if est.MaxCostUSD <= 0 || est.MaxCostUSD > 10 {
		t.Errorf("max cost = $%.2f, want small positive (paper: $1.12)", est.MaxCostUSD)
	}
	if est.AvgCostUSD > est.MaxCostUSD {
		t.Error("avg cost exceeds max cost")
	}
}

func TestStudyEvaluationAgainstTruth(t *testing.T) {
	s := getStudy(t)
	ev := s.Evaluate()
	if ev.TruthMaliciousAds == 0 {
		t.Fatal("ground truth has no malicious records")
	}
	if p := ev.Precision(); p < 0.9 {
		t.Errorf("malicious labeling precision = %.2f, want >= 0.9", p)
	}
	if r := ev.Recall(); r < 0.5 {
		t.Errorf("malicious labeling recall = %.2f, want >= 0.5", r)
	}
	t.Logf("precision=%.3f recall=%.3f (TP=%d FP=%d FN=%d)",
		ev.Precision(), ev.Recall(), ev.TruePositives, ev.FalsePositives, ev.FalseNegatives)
}

func TestNetworkOfSW(t *testing.T) {
	s := getStudy(t)
	an := s.Eco.Networks()[0]
	if got := s.NetworkOfSW(an.SWURL()); got != an.Spec.Name {
		t.Errorf("NetworkOfSW(%s) = %q, want %q", an.SWURL(), got, an.Spec.Name)
	}
	if got := s.NetworkOfSW("https://mysite.org/sw.js"); got != "self-hosted" {
		t.Errorf("self-hosted SW attributed to %q", got)
	}
}

func TestDescribeCluster(t *testing.T) {
	s := getStudy(t)
	out := s.DescribeCluster(0)
	if !strings.Contains(out, "cluster 0:") {
		t.Errorf("DescribeCluster output: %q", out)
	}
}
