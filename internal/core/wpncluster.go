package core

import (
	"sort"

	"pushadminer/internal/cluster"
	"pushadminer/internal/urlx"
)

// WPNCluster is one group of similar WPN messages (§5.1): the output of
// the conservative first-stage clustering.
type WPNCluster struct {
	ID      int
	Members []int // indices into the FeatureSet's record slice

	// SourceDomains are the distinct eSLDs of the pages that pushed the
	// member messages; more than one marks the cluster as an ad
	// campaign.
	SourceDomains []string
	// LandingDomains are the distinct eSLDs of the members' landing
	// pages.
	LandingDomains []string

	// IsAdCampaign is the §5.1.1 label: similar WPNs pushed from
	// multiple distinct source domains.
	IsAdCampaign bool
}

// Singleton reports whether the cluster holds a single message.
func (c *WPNCluster) Singleton() bool { return len(c.Members) == 1 }

// ClusterOptions configure the first-stage clustering.
type ClusterOptions struct {
	// MaxCutCandidates bounds the silhouette sweep (default 64).
	MaxCutCandidates int
	// FixedCutHeight, if > 0, bypasses the silhouette selection and cuts
	// the dendrogram at this height (ablation A1).
	FixedCutHeight float64
	// ConservativeTol implements the paper's tight-cluster tuning: the
	// lowest cut whose silhouette is within this tolerance of the best
	// is chosen. Default 0.15; set negative for exact best-silhouette.
	ConservativeTol float64
	// Linkage selects the agglomeration rule (default cluster.Average,
	// the paper's UPGMA; Single/Complete support the linkage ablation).
	Linkage cluster.Linkage
}

func (o ClusterOptions) conservativeTol() float64 {
	if o.ConservativeTol < 0 {
		return 0
	}
	if o.ConservativeTol == 0 {
		return 0.15
	}
	return o.ConservativeTol
}

// ClusterResult is the outcome of first-stage clustering.
type ClusterResult struct {
	Clusters   []*WPNCluster
	CutHeight  float64
	Silhouette float64
	Labels     []int
}

// ClusterWPNs runs the §5.1.1 pipeline stage: pairwise distances,
// average-linkage agglomerative clustering, and a silhouette-chosen
// dendrogram cut, then derives per-cluster source/landing domain sets
// and the ad-campaign label.
func ClusterWPNs(fs *FeatureSet, opts ClusterOptions) *ClusterResult {
	n := len(fs.Records)
	dm := cluster.Compute(n, fs.Distance)
	dend := cluster.AgglomerativeLinkage(dm, opts.Linkage)

	var labels []int
	var height, sil float64
	if opts.FixedCutHeight > 0 {
		labels = dend.CutByHeight(opts.FixedCutHeight)
		height = opts.FixedCutHeight
		sil = cluster.Silhouette(dm, labels)
	} else {
		best := cluster.BestCutConservative(dend, dm, opts.MaxCutCandidates, opts.conservativeTol())
		labels, height, sil = best.Labels, best.Height, best.Silhouette
	}

	members := cluster.Members(labels)
	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	res := &ClusterResult{CutHeight: height, Silhouette: sil, Labels: labels}
	for _, id := range ids {
		c := &WPNCluster{ID: id, Members: members[id]}
		srcSet, landSet := map[string]bool{}, map[string]bool{}
		for _, m := range c.Members {
			r := fs.Records[m]
			if d := r.SourceDomain; d != "" {
				srcSet[d] = true
			}
			if d := urlx.ESLDOf(r.LandingURL); d != "" {
				landSet[d] = true
			}
		}
		c.SourceDomains = sortedKeys(srcSet)
		c.LandingDomains = sortedKeys(landSet)
		c.IsAdCampaign = !c.Singleton() && len(c.SourceDomains) > 1
		res.Clusters = append(res.Clusters, c)
	}
	return res
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumSingletons counts singleton clusters.
func (r *ClusterResult) NumSingletons() int {
	n := 0
	for _, c := range r.Clusters {
		if c.Singleton() {
			n++
		}
	}
	return n
}

// AdCampaigns returns the clusters labeled as ad campaigns.
func (r *ClusterResult) AdCampaigns() []*WPNCluster {
	var out []*WPNCluster
	for _, c := range r.Clusters {
		if c.IsAdCampaign {
			out = append(out, c)
		}
	}
	return out
}
