package core

import (
	"sort"

	"pushadminer/internal/cluster"
	"pushadminer/internal/simhash"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/urlx"
)

// WPNCluster is one group of similar WPN messages (§5.1): the output of
// the conservative first-stage clustering.
type WPNCluster struct {
	ID      int
	Members []int // indices into the FeatureSet's record slice

	// SourceDomains are the distinct eSLDs of the pages that pushed the
	// member messages; more than one marks the cluster as an ad
	// campaign.
	SourceDomains []string
	// LandingDomains are the distinct eSLDs of the members' landing
	// pages.
	LandingDomains []string

	// IsAdCampaign is the §5.1.1 label: similar WPNs pushed from
	// multiple distinct source domains.
	IsAdCampaign bool
}

// Singleton reports whether the cluster holds a single message.
func (c *WPNCluster) Singleton() bool { return len(c.Members) == 1 }

// PruneOptions configure SimHash-banded candidate pruning of the
// pairwise distance matrix: records whose fingerprints neither share a
// bit-band nor sit within MaxHamming bits are assumed far apart and
// skip the exact soft-cosine evaluation, taking the cheap
// document-vector estimate (FeatureSet.ApproxDistance) instead. The
// zero value disables pruning (exact everywhere — the parity fallback);
// set Enabled for the pruned fast path.
type PruneOptions struct {
	// Enabled turns pruning on. Off by default so results are exact
	// unless explicitly traded for speed.
	Enabled bool
	// Bands is the number of SimHash bit-bands. 0 means the default of
	// 8 (i.e. 8-bit bands); a negative value disables the band test
	// entirely, so pairs are admitted by MaxHamming alone. More bands
	// admit more candidate pairs (safer, slower). The blocked path
	// (ClusterOptions.Blocked) always needs banding, so there a
	// negative value falls back to the default.
	Bands int
	// MaxHamming admits any pair within this Hamming distance
	// regardless of banding. 0 means the default of 24; a negative
	// value disables the Hamming admission, so only band-sharing pairs
	// survive.
	MaxHamming int
	// BlockDistance is the exact-distance confirmation threshold for
	// the blocked path's union edges: band collisions propose candidate
	// pairs, Near(MaxHamming) gates them cheaply, and the soft-cosine
	// distance confirms — two records block together only when they are
	// near in the metric the clustering itself uses. Hamming admission
	// alone cannot serve here: any threshold loose enough to keep true
	// clusters intact (co-cluster pairs reach HD ≈ 20) admits enough
	// random chain edges (~0.1% of pairs at HD ≤ 20) to percolate the
	// candidate graph into one corpus-sized component at n in the
	// thousands, degenerating blocked to exact-plus-overhead. Distance
	// confirmation is what breaks the chains: spurious band/Hamming
	// collisions are textually far (median candidate-pair distance
	// ≈ 0.5) while agglomeration cut heights stay well under 0.3, and
	// any cluster cut at height h is connected in the ≤h threshold
	// graph, so blocks at T ≥ h coarsen the exact partition by
	// construction. 0 means the default of 0.3; a negative value
	// disables the confirmation (band + Hamming alone link — ablation
	// only, percolates at scale).
	BlockDistance float64
	// PrunedDistance, if > 0, is stored verbatim for skipped pairs
	// instead of the document-vector estimate. The constant is faster
	// but distorts the silhouette sweep; leave zero unless the cut
	// height is fixed anyway.
	PrunedDistance float64
}

// withDefaults resolves the 0-means-default sentinels. Negative values
// are preserved: they mean "disabled", which a caller could not express
// before (passing 0 silently got 24/8). Disabling both tests keeps no
// pair at all — every distance becomes the far estimate — which is
// almost never what you want; disable at most one.
func (p PruneOptions) withDefaults() PruneOptions {
	if p.Bands == 0 {
		p.Bands = 8
	}
	if p.MaxHamming == 0 {
		p.MaxHamming = 24
	}
	if p.BlockDistance == 0 {
		p.BlockDistance = 0.3
	}
	return p
}

// ClusterOptions configure the first-stage clustering.
type ClusterOptions struct {
	// MaxCutCandidates bounds the silhouette sweep (default 64).
	MaxCutCandidates int
	// FixedCutHeight, if > 0, bypasses the silhouette selection and cuts
	// the dendrogram at this height (ablation A1).
	FixedCutHeight float64
	// ConservativeTol implements the paper's tight-cluster tuning: the
	// lowest cut whose silhouette is within this tolerance of the best
	// is chosen. Default 0.15; set negative for exact best-silhouette.
	ConservativeTol float64
	// Linkage selects the agglomeration rule (default cluster.Average,
	// the paper's UPGMA; Single/Complete support the linkage ablation).
	Linkage cluster.Linkage
	// Prune enables SimHash-banded candidate pruning of the distance
	// matrix (see PruneOptions). Off by default.
	Prune PruneOptions
	// Blocked selects the sub-quadratic LSH-blocked path: candidate
	// pairs are generated *from* the SimHash band index (instead of
	// filtering an all-pairs scan), grouped into connected-component
	// blocks by union-find, clustered exactly within each block in
	// parallel, and stitched under one globally swept cut height. Cost
	// tracks the candidate count, not n². Prune.Bands, Prune.MaxHamming
	// and Prune.BlockDistance parameterize the blocking (Enabled is
	// ignored); see DESIGN.md "Streaming mining". Naive takes
	// precedence.
	Blocked bool
	// FullSweep forces the unmemoized pooled cut sweep above the
	// validation-scale crossover: every candidate height re-cuts and
	// re-scores every block. The default memoized sweep is bit-identical
	// (labels, cut height, silhouette — the parity matrix asserts it)
	// and strictly cheaper; this exists as the reference for that parity
	// and as the bench baseline measuring what the memo saves. Ignored
	// below the crossover, where the exact sweep machinery runs.
	FullSweep bool
	// BuildMedoids attaches the persistable medoid classify index
	// (campaign medoids + chosen cut; see MedoidIndex) to the blocked
	// batch result, at the cost of one medoid pass over the blocks. The
	// incremental path always attaches it — the pass is already paid
	// for there. See PipelineOptions.MedoidIndexPath.
	BuildMedoids bool
	// Incremental mines the records as a replayed stream: an
	// IncrementalClusterer adds them in IncrementalBatch-sized batches,
	// re-clustering only dirty blocks after each. The final result is
	// identical to the Blocked batch path; the point is exercising (and
	// timing) the resumable service loop. Implies Blocked.
	Incremental bool
	// IncrementalBatch is the replay batch size (default 256).
	IncrementalBatch int
	// Naive selects the pre-optimization reference path: per-pair
	// distances that recompute both self quad-forms, no pruning, and
	// the serial silhouette sweep. The parity tests assert it yields
	// bit-identical labels, cut height, and silhouette to the cached
	// path; the benchmarks measure the gap.
	Naive bool

	// Metrics, when non-nil, records clustering-stage wall-times
	// (distance_matrix, linkage, cut, silhouette) in the
	// mining_stage_ns family and, on the pruned path, the
	// cluster_pairs family's exact-vs-pruned pair counts. Nil disables
	// with no overhead on the distance hot loop.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, emits one span per clustering stage. Nil
	// disables. RunPipeline threads its own registry/tracer (and the
	// pipeline root span) through these when they are unset.
	Tracer *telemetry.Tracer
	// Ledger, when non-nil, records a deterministic event stream of the
	// run (stage brackets, blocks clustered, heights swept, incremental
	// batches) — byte-stable across reruns at a fixed seed, unlike the
	// timing-carrying telemetry snapshot. Works with or without
	// Metrics/Tracer. See DESIGN.md "Mining observability plane".
	Ledger *MiningLedger
	// parent is the span the stage spans hang off (set by RunPipeline;
	// 0 makes them roots).
	parent telemetry.SpanID
	// prog is the live /miningz progress accumulator (set by
	// RunPipeline, or created by ClusterWPNs when any observation sink
	// is attached; nil when observation is fully off).
	prog *miningProgress
}

func (o ClusterOptions) conservativeTol() float64 {
	if o.ConservativeTol < 0 {
		return 0
	}
	if o.ConservativeTol == 0 {
		return 0.15
	}
	return o.ConservativeTol
}

// ClusterResult is the outcome of first-stage clustering.
type ClusterResult struct {
	Clusters   []*WPNCluster
	CutHeight  float64
	Silhouette float64
	Labels     []int
	// Medoids is the persistable medoid classify index — populated by
	// the incremental path, and by the blocked batch path when
	// ClusterOptions.BuildMedoids is set. Nil otherwise.
	Medoids *MedoidIndex
}

// ClusterWPNs runs the §5.1.1 pipeline stage: pairwise distances,
// average-linkage agglomerative clustering, and a silhouette-chosen
// dendrogram cut, then derives per-cluster source/landing domain sets
// and the ad-campaign label.
func ClusterWPNs(fs *FeatureSet, opts ClusterOptions) *ClusterResult {
	// Stand up the live /miningz status for a standalone clustering run
	// when any observation sink is attached (RunPipeline creates and
	// threads its own, covering the full pipeline). The fully disabled
	// path allocates nothing.
	if opts.prog == nil && (opts.Metrics != nil || opts.Tracer != nil || opts.Ledger != nil) {
		opts.prog = newMiningProgress(clusterMode(opts), len(fs.Records))
		defer opts.prog.finish()
	}
	if !opts.Naive {
		if opts.Incremental {
			return clusterWPNsIncremental(fs, opts)
		}
		if opts.Blocked {
			return clusterWPNsBlocked(fs, opts)
		}
	}
	st := newStageTimer(opts.Metrics, opts.Tracer, opts.parent, opts.Ledger, opts.prog)
	n := len(fs.Records)

	// Pair accounting: exact = pairs whose soft-cosine distance was
	// computed, pruned = pairs skipped by the SimHash filter. On the
	// unmasked paths every pair is exact. Resolved only when metrics
	// are enabled so the disabled hot loop stays untouched.
	var exactPairs, prunedPairs *telemetry.Counter
	if opts.Metrics != nil {
		pairs := opts.Metrics.Family("cluster_pairs", "kind")
		exactPairs, prunedPairs = pairs.With("exact"), pairs.With("pruned")
	}

	// Deltas (not absolute Value()s) go to the live status: the registry
	// may span several runs, the progress accumulator is per-run.
	exactBefore, prunedBefore := exactPairs.Value(), prunedPairs.Value()

	var dm *cluster.DistMatrix
	done := st.stage("distance_matrix")
	switch {
	case opts.Naive:
		dm = cluster.Compute(n, fs.NaiveDistance)
		exactPairs.Add(int64(n) * int64(n-1) / 2)
	case opts.Prune.Enabled:
		p := opts.Prune.withDefaults()
		// Negative sentinels disable a test (see PruneOptions); the
		// closure is specialized so the hot loop never re-checks them.
		var keep func(i, j int) bool
		switch {
		case p.Bands > 0 && p.MaxHamming > 0:
			keep = func(i, j int) bool {
				return simhash.SharesBand(fs.Hashes[i], fs.Hashes[j], p.Bands) ||
					simhash.Near(fs.Hashes[i], fs.Hashes[j], p.MaxHamming)
			}
		case p.Bands > 0:
			keep = func(i, j int) bool {
				return simhash.SharesBand(fs.Hashes[i], fs.Hashes[j], p.Bands)
			}
		case p.MaxHamming > 0:
			keep = func(i, j int) bool {
				return simhash.Near(fs.Hashes[i], fs.Hashes[j], p.MaxHamming)
			}
		default:
			keep = func(i, j int) bool { return false }
		}
		if exactPairs != nil {
			inner := keep
			keep = func(i, j int) bool {
				if inner(i, j) {
					exactPairs.Inc()
					return true
				}
				prunedPairs.Inc()
				return false
			}
		}
		far := fs.ApproxDistance
		if p.PrunedDistance > 0 {
			c := p.PrunedDistance
			far = func(i, j int) float64 { return c }
		}
		dm = cluster.ComputeMasked(n, fs.Distance, keep, far)
	default:
		dm = cluster.Compute(n, fs.Distance)
		exactPairs.Add(int64(n) * int64(n-1) / 2)
	}
	done()
	opts.prog.addPairs(exactPairs.Value()-exactBefore, prunedPairs.Value()-prunedBefore)

	done = st.stage("linkage")
	dend := cluster.AgglomerativeLinkage(dm, opts.Linkage)
	done()

	var labels []int
	var height, sil float64
	if opts.FixedCutHeight > 0 {
		done = st.stage("cut")
		labels = dend.CutByHeight(opts.FixedCutHeight)
		done()
		height = opts.FixedCutHeight
		done = st.stage("silhouette")
		sil = cluster.Silhouette(dm, labels)
		done()
	} else if opts.Naive {
		// The conservative sweep evaluates candidate cuts and their
		// silhouettes in one pass, so cut and silhouette time fuse
		// into the "cut" stage here.
		done = st.stage("cut")
		best := cluster.BestCutConservativeSerial(dend, dm, opts.MaxCutCandidates, opts.conservativeTol())
		done()
		labels, height, sil = best.Labels, best.Height, best.Silhouette
	} else {
		done = st.stage("cut")
		best := cluster.BestCutConservative(dend, dm, opts.MaxCutCandidates, opts.conservativeTol())
		done()
		labels, height, sil = best.Labels, best.Height, best.Silhouette
	}

	if opts.Ledger != nil {
		opts.Ledger.CutChosen(height, numClusters(labels), sil)
	}
	return finishClusterResult(fs, labels, height, sil)
}

// finishClusterResult derives the per-cluster source/landing domain
// sets and ad-campaign labels from a labeling — the tail every
// clustering path (exact, pruned, blocked, incremental) shares.
// Negative labels mark records not yet covered (an incremental
// clusterer mid-stream) and produce no cluster.
func finishClusterResult(fs *FeatureSet, labels []int, height, sil float64) *ClusterResult {
	members := cluster.Members(labels)
	delete(members, -1)
	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	res := &ClusterResult{CutHeight: height, Silhouette: sil, Labels: labels}
	for _, id := range ids {
		c := &WPNCluster{ID: id, Members: members[id]}
		srcSet, landSet := map[string]bool{}, map[string]bool{}
		for _, m := range c.Members {
			r := fs.Records[m]
			if d := r.SourceDomain; d != "" {
				srcSet[d] = true
			}
			if d := urlx.ESLDOf(r.LandingURL); d != "" {
				landSet[d] = true
			}
		}
		c.SourceDomains = sortedKeys(srcSet)
		c.LandingDomains = sortedKeys(landSet)
		c.IsAdCampaign = !c.Singleton() && len(c.SourceDomains) > 1
		res.Clusters = append(res.Clusters, c)
	}
	return res
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumSingletons counts singleton clusters.
func (r *ClusterResult) NumSingletons() int {
	n := 0
	for _, c := range r.Clusters {
		if c.Singleton() {
			n++
		}
	}
	return n
}

// AdCampaigns returns the clusters labeled as ad campaigns.
func (r *ClusterResult) AdCampaigns() []*WPNCluster {
	var out []*WPNCluster
	for _, c := range r.Clusters {
		if c.IsAdCampaign {
			out = append(out, c)
		}
	}
	return out
}
