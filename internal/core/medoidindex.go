package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"pushadminer/internal/simhash"
)

// MedoidEntry pins one campaign's medoid: the cluster label in the
// mined labeling and the medoid's record index into the FeatureSet.
type MedoidEntry struct {
	Label  int `json:"label"`
	Record int `json:"record"`
}

// MedoidIndex is the persistable classify state of a mined corpus: the
// campaign medoids, the cut that defined them, and the banding the
// candidate lookup uses. The incremental service loop saves it after a
// full re-mine (pushadminer -medoid-index) and restores it at startup
// (IncrementalClusterer.RestoreMedoidIndex), so arrivals can be
// Add-classified against medoids immediately — no Recluster, and
// therefore no cut sweep, between full re-mines. Only the medoid
// records are indexed, so Classify costs one banded lookup plus one
// exact distance per candidate medoid.
//
// The index is only meaningful against the FeatureSet it was mined
// from (Record indices and distances live in that feature space);
// Records pins its size as a consistency check.
type MedoidIndex struct {
	// CutHeight / Silhouette are the mined run's chosen cut; CutHeight
	// is also Classify's assignment radius.
	CutHeight  float64 `json:"cut_height"`
	Silhouette float64 `json:"silhouette"`
	// Records is the feature-set size the index was mined from.
	Records int `json:"records"`
	// Bands is the SimHash banding of the candidate lookup.
	Bands int `json:"bands"`
	// Medoids is ascending by label, so the serialized form is
	// deterministic.
	Medoids []MedoidEntry `json:"medoids"`

	ix      *simhash.BandIndex // lazily built over the medoid hashes
	candBuf []int
}

// newMedoidIndex builds the index from a mined medoid map (cluster
// label -> medoid record).
func newMedoidIndex(fs *FeatureSet, medoids map[int]int, cutHeight, sil float64, bands int) *MedoidIndex {
	x := &MedoidIndex{CutHeight: cutHeight, Silhouette: sil, Records: len(fs.Records), Bands: bands}
	labels := make([]int, 0, len(medoids))
	for l := range medoids {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	x.Medoids = make([]MedoidEntry, 0, len(labels))
	for _, l := range labels {
		x.Medoids = append(x.Medoids, MedoidEntry{Label: l, Record: medoids[l]})
	}
	return x
}

// Classify returns the label of the nearest medoid within the cut
// height among record i's banded candidate medoids, and that distance.
// Returns (-1, 0) when no medoid is near enough (the record opens new
// territory) or the index is empty. Deterministic: candidates arrive
// in ascending medoid position and ties keep the later (equal-distance
// updates overwrite), matching the incremental Add's own nearest-medoid
// rule.
func (x *MedoidIndex) Classify(fs *FeatureSet, i int) (label int, dist float64) {
	if x == nil || len(x.Medoids) == 0 || x.CutHeight <= 0 {
		return -1, 0
	}
	if x.ix == nil {
		bands := x.Bands
		if bands <= 0 {
			bands = 8
		}
		x.ix = simhash.NewBandIndex(bands)
		for p, me := range x.Medoids {
			x.ix.Add(p, fs.Hashes[me.Record])
		}
	}
	x.candBuf = x.ix.AppendCandidates(x.candBuf[:0], fs.Hashes[i])
	label, dist = -1, x.CutHeight
	for _, p := range x.candBuf {
		me := x.Medoids[p]
		if d := fs.Distance(i, me.Record); d <= dist {
			label, dist = me.Label, d
		}
	}
	if label < 0 {
		return -1, 0
	}
	return label, dist
}

// SaveMedoidIndex writes the index as deterministic JSON: fixed field
// order, medoids ascending by label, trailing newline.
func SaveMedoidIndex(path string, x *MedoidIndex) error {
	data, err := json.MarshalIndent(x, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode medoid index: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: write medoid index: %w", err)
	}
	return nil
}

// LoadMedoidIndex reads a persisted index back.
func LoadMedoidIndex(path string) (*MedoidIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read medoid index: %w", err)
	}
	var x MedoidIndex
	if err := json.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("core: parse medoid index %s: %w", path, err)
	}
	for _, me := range x.Medoids {
		if me.Record < 0 || me.Record >= x.Records {
			return nil, fmt.Errorf("core: medoid index %s: record %d out of range [0,%d)", path, me.Record, x.Records)
		}
	}
	return &x, nil
}

// blockMedoids computes each cluster's medoid — the member minimizing
// the sum of within-cluster distances, ties to the lowest record index
// — from the blocks' exact local matrices. Clusters never span blocks
// (linkage is per-block), so each is fully resolvable from one local
// matrix. Returns cluster label -> medoid record index.
func blockMedoids(blocks []*blockDendrogram, per [][]int, labels []int) map[int]int {
	medoids := make(map[int]int)
	for bi, bd := range blocks {
		lab := per[bi]
		kb := 0
		for _, l := range lab {
			if l+1 > kb {
				kb = l + 1
			}
		}
		groups := make([][]int, kb) // local indices per local label
		for li, l := range lab {
			groups[l] = append(groups[l], li)
		}
		for _, g := range groups {
			if len(g) == 0 {
				continue
			}
			best, bestSum := -1, 0.0
			for _, li := range g {
				var sum float64
				for _, lj := range g {
					if lj != li {
						sum += bd.dm.At(li, lj)
					}
				}
				if best < 0 || sum < bestSum {
					best, bestSum = li, sum
				}
			}
			medoids[labels[bd.members[best]]] = bd.members[best]
		}
	}
	return medoids
}
