package core

import (
	"fmt"

	"pushadminer/internal/browser"
	"pushadminer/internal/report"
	"pushadminer/internal/webeco"
)

// TrackingCheck reproduces the §8 observation that some ad networks
// cookie-track browsers across sessions — and validates the crawler's
// mitigation (one container, i.e. one cookie jar, per URL).
type TrackingCheck struct {
	Network string
	// SharedBrowserPushes is the scheduled push count when ONE browser
	// visits two of the network's publisher sites (the second
	// subscription is recognized and frequency-capped).
	SharedBrowserPushes int
	// IsolatedPushes is the count when each site gets a fresh container.
	IsolatedPushes int
}

// RunTrackingCheck visits two publisher sites of a cookie-tracking
// network, once with a shared browser and once with isolated containers,
// and compares the push volume the network schedules.
func RunTrackingCheck(seed int64, scale float64) (*TrackingCheck, error) {
	countScheduled := func(shared bool) (string, int, error) {
		eco, err := webeco.New(webeco.Config{Seed: seed, Scale: scale})
		if err != nil {
			return "", 0, err
		}
		defer eco.Close()

		// Two NPR publisher sites of one tracking network.
		var network string
		var sites []string
		for _, s := range eco.Sites() {
			if !s.NPR || s.Network == "" {
				continue
			}
			if network == "" && isTracking(eco, s.Network) {
				network = s.Network
			}
			if s.Network == network && network != "" {
				sites = append(sites, s.URL)
				if len(sites) == 2 {
					break
				}
			}
		}
		if len(sites) < 2 {
			return "", 0, fmt.Errorf("core: no tracking network with two NPR sites at scale %v", scale)
		}

		newBrowser := func(id string) *browser.Browser {
			return browser.New(browser.Config{
				Clock:    eco.Clock,
				Client:   eco.Net.ClientNoRedirect(),
				ClientID: id,
			})
		}
		if shared {
			br := newBrowser("shared")
			for _, u := range sites {
				if _, err := br.Visit(u); err != nil {
					return "", 0, err
				}
			}
		} else {
			for i, u := range sites {
				br := newBrowser(fmt.Sprintf("container-%d", i))
				if _, err := br.Visit(u); err != nil {
					return "", 0, err
				}
			}
		}
		return network, eco.PendingPushes(), nil
	}

	network, sharedN, err := countScheduled(true)
	if err != nil {
		return nil, err
	}
	_, isolatedN, err := countScheduled(false)
	if err != nil {
		return nil, err
	}
	return &TrackingCheck{Network: network, SharedBrowserPushes: sharedN, IsolatedPushes: isolatedN}, nil
}

func isTracking(eco *webeco.Ecosystem, name string) bool {
	for _, an := range eco.Networks() {
		if an.Spec.Name == name {
			return an.Tracks()
		}
	}
	return false
}

// Table renders the check.
func (tc *TrackingCheck) Table() *report.Table {
	t := &report.Table{
		Title:   "Cross-session tracking check (§8) — " + tc.Network,
		Headers: []string{"Setup", "Pushes scheduled for 2 subscriptions"},
		Note:    "tracking networks frequency-cap recognized browsers; one container per URL defeats it",
	}
	t.AddRow("one shared browser (cookie reused)", tc.SharedBrowserPushes)
	t.AddRow("one container per URL (paper's mitigation)", tc.IsolatedPushes)
	return t
}
