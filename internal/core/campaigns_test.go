package core

import "testing"

func TestCampaignsSummaries(t *testing.T) {
	s := getStudy(t)
	cs := Campaigns(s)
	if len(cs) != s.Analysis.Report.AdCampaignClusters {
		t.Fatalf("summaries = %d, campaigns = %d", len(cs), s.Analysis.Report.AdCampaignClusters)
	}
	mal := 0
	for i, c := range cs {
		if c.Size < 2 || len(c.Sources) < 2 {
			t.Errorf("campaign %d not multi-source: %+v", c.ClusterID, c)
		}
		if c.SampleTitle == "" {
			t.Errorf("campaign %d has no sample", c.ClusterID)
		}
		if i > 0 && cs[i-1].Size < c.Size {
			t.Error("summaries not sorted by size")
		}
		if c.Malicious {
			mal++
			if c.ScamType == "" {
				t.Errorf("malicious campaign %d unclassified", c.ClusterID)
			}
		}
		if c.MetaCluster < 0 {
			t.Errorf("campaign %d not in any meta cluster", c.ClusterID)
		}
	}
	if mal != s.Analysis.Report.MaliciousCampaigns {
		t.Errorf("malicious summaries = %d, report says %d", mal, s.Analysis.Report.MaliciousCampaigns)
	}
}
