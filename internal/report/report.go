// Package report renders the study's tables in aligned plain text, shared
// by the CLI, the examples, and the benchmark harness so every surface
// prints the paper's tables the same way.
package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Note is printed under the table (e.g. paper-vs-measured caveats).
	Note string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if w := len([]rune(c)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		b.WriteString(strings.Repeat("=", len([]rune(t.Title))))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// MarshalJSON renders the table as a machine-readable object with
// title, headers, rows and note — the CLI's -format json output.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers,omitempty"`
		Rows    [][]string `json:"rows"`
		Note    string     `json:"note,omitempty"`
	}{t.Title, t.Headers, t.Rows, t.Note})
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
