package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Headers: []string{"name", "count"},
		Note:    "a note",
	}
	tab.AddRow("alpha", 1)
	tab.AddRow("beta-longer", 22)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != "====" {
		t.Errorf("underline = %q", lines[1])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Errorf("rows missing:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "note: a note") {
		t.Errorf("note missing:\n%s", out)
	}
	// Columns aligned: every data line has the count column starting at
	// the same offset.
	idx := strings.Index(lines[2], "count")
	for _, l := range lines[4:6] {
		if len(l) < idx {
			t.Errorf("row %q shorter than header alignment", l)
		}
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	tab := &Table{Headers: []string{"v"}}
	tab.AddRow(3.14159)
	if tab.Rows[0][0] != "3.14" {
		t.Errorf("float cell = %q", tab.Rows[0][0])
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tab := &Table{}
	tab.AddRow("x", "y")
	out := tab.String()
	if !strings.Contains(out, "x") || strings.Contains(out, "===") {
		t.Errorf("bare table rendering wrong: %q", out)
	}
}

func TestRaggedRows(t *testing.T) {
	tab := &Table{Headers: []string{"a"}}
	tab.AddRow("1", "2", "3") // wider than headers
	out := tab.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra columns dropped: %q", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 4); got != "25.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(5, 0); got != "n/a" {
		t.Errorf("Pct div0 = %q", got)
	}
}

func TestTableMarshalJSON(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a"}, Note: "n"}
	tab.AddRow("x")
	b, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title":"T"`, `"headers":["a"]`, `"rows":[["x"]]`, `"note":"n"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %s: %s", want, b)
		}
	}
}
