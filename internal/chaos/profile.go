package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Presets name commonly used fault mixes. "acceptance" is the scenario
// the chaos acceptance suite pins: 5% connection resets, 10% 503
// bursts, and one 24-hour push-service outage starting 72 hours in.
var presets = map[string]Profile{
	"mild": {
		LatencyFraction:  0.05,
		ResetFraction:    0.02,
		Error5xxFraction: 0.05,
	},
	"acceptance": {
		ResetFraction:    0.05,
		Error5xxFraction: 0.10,
		RetryAfter:       time.Second,
		PushOutages:      []Window{{Start: 72 * time.Hour, Dur: 24 * time.Hour}},
	},
	"harsh": {
		LatencyFraction:        0.10,
		ResetFraction:          0.10,
		Error5xxFraction:       0.20,
		TruncateFraction:       0.05,
		ContainerCrashFraction: 0.02,
		RetryAfter:             time.Second,
		PushOutages:            []Window{{Start: 72 * time.Hour, Dur: 24 * time.Hour}},
	},
}

// Preset returns a named preset profile.
func Preset(name string) (Profile, bool) {
	p, ok := presets[strings.ToLower(name)]
	return p, ok
}

// ParseProfile parses a -chaos-profile flag value: a comma-separated
// list of preset names and key=value overrides. An empty string, "none"
// or "off" yields nil (chaos disabled).
//
// Keys: seed=N, latency=F, latmin=D, latmax=D, resets=F, errors=F,
// truncate=F, crashes=F, workercrashes=F, retryafter=D,
// outage=START:DUR (repeatable), blackhole=HOST:START:DUR (repeatable).
// Durations use Go syntax ("72h", "30m"); fractions are in [0,1].
//
// Example: "acceptance,crashes=0.01,blackhole=ads.example.test:24h:6h".
func ParseProfile(s string) (*Profile, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "", "none", "off":
		return nil, nil
	}
	var p Profile
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if preset, ok := Preset(part); ok {
			merge(&p, preset)
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: unknown preset or malformed option %q", part)
		}
		if err := apply(&p, strings.ToLower(strings.TrimSpace(k)), strings.TrimSpace(v)); err != nil {
			return nil, err
		}
	}
	return &p, nil
}

// merge overlays preset values onto p (preset wins for fields it sets).
func merge(p *Profile, preset Profile) {
	if preset.Seed != 0 {
		p.Seed = preset.Seed
	}
	if preset.LatencyFraction > 0 {
		p.LatencyFraction = preset.LatencyFraction
	}
	if preset.LatencyMin > 0 {
		p.LatencyMin = preset.LatencyMin
	}
	if preset.LatencyMax > 0 {
		p.LatencyMax = preset.LatencyMax
	}
	if preset.ResetFraction > 0 {
		p.ResetFraction = preset.ResetFraction
	}
	if preset.Error5xxFraction > 0 {
		p.Error5xxFraction = preset.Error5xxFraction
	}
	if preset.RetryAfter > 0 {
		p.RetryAfter = preset.RetryAfter
	}
	if preset.TruncateFraction > 0 {
		p.TruncateFraction = preset.TruncateFraction
	}
	if preset.ContainerCrashFraction > 0 {
		p.ContainerCrashFraction = preset.ContainerCrashFraction
	}
	if preset.WorkerCrashFraction > 0 {
		p.WorkerCrashFraction = preset.WorkerCrashFraction
	}
	p.PushOutages = append(p.PushOutages, preset.PushOutages...)
	for h, ws := range preset.Blackholes {
		if p.Blackholes == nil {
			p.Blackholes = make(map[string][]Window)
		}
		p.Blackholes[h] = append(p.Blackholes[h], ws...)
	}
}

func apply(p *Profile, key, val string) error {
	frac := func(dst *float64) error {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("chaos: %s wants a fraction in [0,1], got %q", key, val)
		}
		*dst = f
		return nil
	}
	dur := func(dst *time.Duration) error {
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("chaos: %s wants a duration, got %q", key, val)
		}
		*dst = d
		return nil
	}
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("chaos: bad seed %q", val)
		}
		p.Seed = n
		return nil
	case "latency":
		return frac(&p.LatencyFraction)
	case "latmin":
		return dur(&p.LatencyMin)
	case "latmax":
		return dur(&p.LatencyMax)
	case "resets":
		return frac(&p.ResetFraction)
	case "errors":
		return frac(&p.Error5xxFraction)
	case "truncate":
		return frac(&p.TruncateFraction)
	case "crashes":
		return frac(&p.ContainerCrashFraction)
	case "workercrashes":
		return frac(&p.WorkerCrashFraction)
	case "retryafter":
		return dur(&p.RetryAfter)
	case "outage":
		w, err := parseWindow(val)
		if err != nil {
			return err
		}
		p.PushOutages = append(p.PushOutages, w)
		return nil
	case "blackhole":
		host, rest, ok := strings.Cut(val, ":")
		if !ok {
			return fmt.Errorf("chaos: blackhole wants HOST:START:DUR, got %q", val)
		}
		w, err := parseWindow(rest)
		if err != nil {
			return err
		}
		if p.Blackholes == nil {
			p.Blackholes = make(map[string][]Window)
		}
		host = strings.ToLower(host)
		p.Blackholes[host] = append(p.Blackholes[host], w)
		return nil
	}
	return fmt.Errorf("chaos: unknown option %q", key)
}

func parseWindow(s string) (Window, error) {
	startStr, durStr, ok := strings.Cut(s, ":")
	if !ok {
		return Window{}, fmt.Errorf("chaos: window wants START:DUR, got %q", s)
	}
	start, err := time.ParseDuration(startStr)
	if err != nil {
		return Window{}, fmt.Errorf("chaos: bad window start %q", startStr)
	}
	d, err := time.ParseDuration(durStr)
	if err != nil {
		return Window{}, fmt.Errorf("chaos: bad window duration %q", durStr)
	}
	return Window{Start: start, Dur: d}, nil
}
