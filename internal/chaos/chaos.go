// Package chaos is the deterministic fault-injection layer for the
// simulated web. It wraps vnet host handlers and the shared transport
// with seeded, composable fault profiles — latency spikes, connection
// resets, 5xx bursts, truncated bodies, DNS blackhole windows, and
// scheduled push-service outages driven by the simulated clock — so the
// crawler's robustness machinery (retries, circuit breakers, crash
// recovery, checkpointing) can be exercised and *measured* under the
// failure modes a real two-month crawl survives (§6.1 of the paper).
//
// Every fault decision is a pure function of (seed, client, host,
// method, path class, attempt number) or, for windowed faults, of the
// simulated time alone. Two runs with the same seed therefore inject
// byte-identical fault sequences regardless of goroutine scheduling,
// which is what makes record-loss bounds assertable in tests.
package chaos

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pushadminer/internal/telemetry"
)

// ClientHeader carries the stable browser/container identity on every
// request, letting the injector key fault draws on *who* is asking
// rather than on nondeterministic artifacts like token mint order.
const ClientHeader = "X-Sim-Client"

// InjectedHeader marks responses the injector fabricated (injected 503s
// and outage 503s) with the fault kind, so client-side observers can
// count injected faults 1:1 and reconcile them against retry counters.
// It is always set — fault injection is deterministic, so runs with and
// without telemetry see byte-identical responses.
const InjectedHeader = "X-Chaos"

// Window is a time interval expressed as an offset from the simulation
// epoch, so profiles stay seed-portable.
type Window struct {
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

func (w Window) contains(elapsed time.Duration) bool {
	return elapsed >= w.Start && elapsed < w.Start+w.Dur
}

// Profile is a composable fault configuration. Fractions are per-request
// probabilities in [0, 1]; zero disables that fault class.
type Profile struct {
	// Seed drives all fault draws. 0 means "inherit" (the ecosystem
	// substitutes its own seed).
	Seed int64 `json:"seed"`

	// LatencyFraction of requests are delayed by a deterministic value
	// in [LatencyMin, LatencyMax] (real time; the simulated clock does
	// not advance).
	LatencyFraction float64       `json:"latency_fraction,omitempty"`
	LatencyMin      time.Duration `json:"latency_min,omitempty"`
	LatencyMax      time.Duration `json:"latency_max,omitempty"`

	// ResetFraction of requests have their connection hijacked and
	// closed before any response bytes — the client sees EOF/RST.
	ResetFraction float64 `json:"reset_fraction,omitempty"`

	// Error5xxFraction of requests are answered 503 before reaching the
	// real handler (no server-side effects happen).
	Error5xxFraction float64 `json:"error_5xx_fraction,omitempty"`

	// RetryAfter, when nonzero, is advertised on injected 503s.
	RetryAfter time.Duration `json:"retry_after,omitempty"`

	// TruncateFraction of GET responses are cut mid-body (the declared
	// Content-Length exceeds the bytes sent). Only GETs: truncating a
	// POST's response would hide a side effect that already happened.
	TruncateFraction float64 `json:"truncate_fraction,omitempty"`

	// ContainerCrashFraction is consulted by the crawler's CrashPlan:
	// the probability a given container crashes on a given resume cycle.
	ContainerCrashFraction float64 `json:"container_crash_fraction,omitempty"`

	// WorkerCrashFraction is consulted by the fleet's worker crash
	// plan: the probability a given shard worker dies on a given
	// heartbeat cycle (kill -9, OOM — the whole process, not one
	// container). Only fleet runs consult it; it has no effect on the
	// single-process crawl.
	WorkerCrashFraction float64 `json:"worker_crash_fraction,omitempty"`

	// Blackholes maps hostnames to windows during which the host is
	// unresolvable (transport-level "no such host" errors).
	Blackholes map[string][]Window `json:"blackholes,omitempty"`

	// PushOutages are windows during which the push service answers 503
	// to everything — the scheduled push-service outage scenario.
	PushOutages []Window `json:"push_outages,omitempty"`
	// PushHost is the host the outage windows apply to.
	PushHost string `json:"push_host,omitempty"`

	// Only, when non-empty, restricts per-request fault injection to
	// these hosts (windowed faults always apply to their own hosts).
	Only []string `json:"only,omitempty"`
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.LatencyFraction > 0 || p.ResetFraction > 0 || p.Error5xxFraction > 0 ||
		p.TruncateFraction > 0 || p.ContainerCrashFraction > 0 ||
		p.WorkerCrashFraction > 0 ||
		len(p.Blackholes) > 0 || len(p.PushOutages) > 0
}

func (p Profile) withDefaults() Profile {
	if p.LatencyMin <= 0 {
		p.LatencyMin = 2 * time.Millisecond
	}
	if p.LatencyMax < p.LatencyMin {
		p.LatencyMax = p.LatencyMin + 20*time.Millisecond
	}
	return p
}

// Injector applies a Profile. It is safe for concurrent use; all state
// mutations commute, so totals stay deterministic under parallelism.
type Injector struct {
	prof  Profile
	now   func() time.Time
	start time.Time

	mu       sync.Mutex
	attempts map[string]int
	// stats counts injected faults by kind. It is a telemetry family so
	// the injector's own report (Stats) and registry snapshots read the
	// same counters — there is no second bookkeeping path to drift.
	stats *telemetry.Family
}

// NewInjector builds an injector. now reports the current simulated
// time and start is the simulation epoch (windows are offsets from it).
func NewInjector(p Profile, now func() time.Time, start time.Time) *Injector {
	return &Injector{
		prof:     p.withDefaults(),
		now:      now,
		start:    start,
		attempts: make(map[string]int),
		stats:    telemetry.NewFamily("chaos_faults", "kind"),
	}
}

// Profile returns the injector's (defaulted) profile.
func (in *Injector) Profile() Profile { return in.prof }

// Stats returns a snapshot of fault counters by kind.
func (in *Injector) Stats() map[string]int {
	counts := in.stats.Counts()
	out := make(map[string]int, len(counts))
	for k, v := range counts {
		out[k] = int(v)
	}
	return out
}

// Faults returns the injected-fault counter family ("chaos_faults",
// labeled by kind) backing Stats.
func (in *Injector) Faults() *telemetry.Family { return in.stats }

// AttachMetrics folds the injected-fault family into a registry so
// snapshots carry chaos totals. Nil-safe on both sides.
func (in *Injector) AttachMetrics(reg *telemetry.Registry) {
	if in == nil {
		return
	}
	reg.Adopt(in.stats)
}

// StatsLine renders the counters compactly for logs.
func (in *Injector) StatsLine() string {
	st := in.Stats()
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, st[k]))
	}
	return strings.Join(parts, " ")
}

func (in *Injector) count(kind string) {
	in.stats.Add(kind, 1)
}

// key identifies a request class for fault draws: who, where, what.
// The full path participates, so /send/tok-a and /send/tok-b keep
// separate attempt counters: push tokens are minted from registration
// identity (browser instance, origin, script — see fcm.Register), never
// from arrival order, so per-token draw sequences stay deterministic
// even when deliveries to different tokens are flushed concurrently.
func requestKey(r *http.Request, host string) string {
	client := r.Header.Get(ClientHeader)
	return client + "|" + host + "|" + r.Method + "|" + r.URL.Path
}

// nextAttempt increments and returns the per-key attempt counter.
func (in *Injector) nextAttempt(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[key]++
	return in.attempts[key]
}

// draw is one deterministic Bernoulli trial.
func (in *Injector) draw(kind, key string, attempt int, frac float64) bool {
	if frac <= 0 {
		return false
	}
	return hashFrac(in.prof.Seed, fmt.Sprintf("%s|%s|%d", kind, key, attempt)) < frac
}

// hashFrac maps a key to a deterministic uniform value in [0, 1).
// FNV-1a barely avalanches its final input bytes — a trailing attempt
// counter would shift only the low bits, making retries draw the same
// fault as the first try — so the sum is run through a 64-bit mix
// finalizer before the top 53 bits are taken.
func hashFrac(seed int64, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

func (in *Injector) applies(host string) bool {
	if len(in.prof.Only) == 0 {
		return true
	}
	for _, h := range in.prof.Only {
		if strings.EqualFold(h, host) {
			return true
		}
	}
	return false
}

// inOutage reports whether host is inside a scheduled push outage.
func (in *Injector) inOutage(host string) bool {
	if host != in.prof.PushHost || len(in.prof.PushOutages) == 0 {
		return false
	}
	elapsed := in.now().Sub(in.start)
	for _, w := range in.prof.PushOutages {
		if w.contains(elapsed) {
			return true
		}
	}
	return false
}

// blackholed reports whether host is inside a blackhole window.
func (in *Injector) blackholed(host string) bool {
	ws := in.prof.Blackholes[host]
	if len(ws) == 0 {
		return false
	}
	elapsed := in.now().Sub(in.start)
	for _, w := range ws {
		if w.contains(elapsed) {
			return true
		}
	}
	return false
}

// ShouldCrashContainer decides whether the container identified by
// clientID crashes on its cycle-th resume. Used via crawler.Config
// CrashPlan.
func (in *Injector) ShouldCrashContainer(clientID string, cycle int) bool {
	if in.prof.ContainerCrashFraction <= 0 {
		return false
	}
	if hashFrac(in.prof.Seed, fmt.Sprintf("crash|%s|%d", clientID, cycle)) < in.prof.ContainerCrashFraction {
		in.count("container_crash")
		return true
	}
	return false
}

// ShouldCrashWorker decides whether the fleet shard worker identified
// by workerID dies on its cycle-th heartbeat. Used via
// fleet.Config.WorkerCrashPlan. Deliberately NOT counted into the
// injector's fault stats: the single-process baseline never consults
// worker plans, and the fleet's Degradation report must stay
// byte-identical to it — kills are tallied in the fleet's own report
// and telemetry instead.
func (in *Injector) ShouldCrashWorker(workerID string, cycle int) bool {
	if in.prof.WorkerCrashFraction <= 0 {
		return false
	}
	return hashFrac(in.prof.Seed, fmt.Sprintf("workercrash|%s|%d", workerID, cycle)) < in.prof.WorkerCrashFraction
}

// Middleware wraps a vnet host handler with fault injection. Faults
// that fail the request (reset, 503, outage) fire BEFORE the inner
// handler runs, so a failed request never has hidden server-side
// effects — retrying it is always safe.
func (in *Injector) Middleware(host string, h http.Handler) http.Handler {
	if !in.applies(host) && host != in.prof.PushHost {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.inOutage(host) {
			in.count("outage_503")
			w.Header().Set("Retry-After", "3600")
			w.Header().Set(InjectedHeader, "outage_503")
			http.Error(w, "chaos: push service outage", http.StatusServiceUnavailable)
			return
		}
		if !in.applies(host) {
			h.ServeHTTP(w, r)
			return
		}
		key := requestKey(r, host)
		n := in.nextAttempt(key)
		if in.draw("reset", key, n, in.prof.ResetFraction) {
			in.count("reset")
			abortConn(w)
			return
		}
		if in.draw("503", key, n, in.prof.Error5xxFraction) {
			in.count("http_503")
			w.Header().Set(InjectedHeader, "http_503")
			if in.prof.RetryAfter > 0 {
				secs := int(in.prof.RetryAfter / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", fmt.Sprint(secs))
			}
			http.Error(w, "chaos: injected 503", http.StatusServiceUnavailable)
			return
		}
		if in.draw("latency", key, n, in.prof.LatencyFraction) {
			in.count("latency")
			time.Sleep(in.latencyFor(key, n))
		}
		if r.Method == http.MethodGet && in.draw("trunc", key, n, in.prof.TruncateFraction) {
			in.count("truncate")
			serveTruncated(w, r, h)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// latencyFor picks a deterministic delay in [LatencyMin, LatencyMax].
func (in *Injector) latencyFor(key string, attempt int) time.Duration {
	span := in.prof.LatencyMax - in.prof.LatencyMin
	f := hashFrac(in.prof.Seed, fmt.Sprintf("latdur|%s|%d", key, attempt))
	return in.prof.LatencyMin + time.Duration(f*float64(span))
}

// abortConn kills the client connection without a response.
func abortConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// serveTruncated runs the inner handler into a buffer, then replays the
// response with the full Content-Length but only half the body; the
// net/http server closes the connection on the short write and the
// client observes an unexpected EOF mid-body.
func serveTruncated(w http.ResponseWriter, r *http.Request, h http.Handler) {
	rec := &captureWriter{header: make(http.Header), code: http.StatusOK}
	h.ServeHTTP(rec, r)
	body := rec.buf.Bytes()
	if len(body) < 2 {
		// Nothing meaningful to cut; pass through.
		copyHeader(w.Header(), rec.header)
		w.WriteHeader(rec.code)
		w.Write(body) //nolint:errcheck
		return
	}
	copyHeader(w.Header(), rec.header)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.code)
	w.Write(body[:len(body)/2]) //nolint:errcheck
}

type captureWriter struct {
	header http.Header
	code   int
	buf    bytes.Buffer
	wrote  bool
}

func (c *captureWriter) Header() http.Header { return c.header }

func (c *captureWriter) WriteHeader(code int) {
	if !c.wrote {
		c.code = code
		c.wrote = true
	}
}

func (c *captureWriter) Write(b []byte) (int, error) {
	c.wrote = true
	return c.buf.Write(b)
}

// WrapTransport adds DNS-blackhole behaviour on the client side: during
// a host's blackhole window every dial fails as if the name did not
// resolve, without the request ever reaching the virtual network.
func (in *Injector) WrapTransport(rt http.RoundTripper) http.RoundTripper {
	return &blackholeTransport{in: in, base: rt}
}

type blackholeTransport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *blackholeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := strings.ToLower(req.URL.Hostname())
	if t.in.blackholed(host) {
		t.in.count("blackhole")
		return nil, fmt.Errorf("chaos: lookup %s: no such host (blackhole window)", host)
	}
	return t.base.RoundTrip(req)
}

// taggingTransport stamps ClientHeader on every outgoing request.
type taggingTransport struct {
	id   string
	base http.RoundTripper
}

func (t *taggingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	clone.Header.Set(ClientHeader, t.id)
	return t.base.RoundTrip(clone)
}

// TagClient wraps the client's transport so every request carries the
// given stable client identity, and returns the same client.
func TagClient(c *http.Client, id string) *http.Client {
	base := c.Transport
	if base == nil {
		base = http.DefaultTransport
	}
	c.Transport = &taggingTransport{id: id, base: base}
	return c
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
