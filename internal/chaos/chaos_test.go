package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func fixedNow(t time.Time) func() time.Time { return func() time.Time { return t } }

// wrap serves an injector-wrapped handler over a real HTTP server so
// faults exercise an actual client connection (resets, truncation).
func wrap(t *testing.T, in *Injector, host string, h http.Handler) (*httptest.Server, *http.Client) {
	t.Helper()
	srv := httptest.NewServer(in.Middleware(host, h))
	t.Cleanup(srv.Close)
	client := srv.Client()
	client.Transport = &taggingTransport{id: "test-client", base: client.Transport}
	return srv, client
}

func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	})
}

func TestDrawsDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []bool {
		in := NewInjector(Profile{Seed: seed, ResetFraction: 0.3}, fixedNow(epoch), epoch)
		var out []bool
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("c|h|GET|/p%d", i%7)
			out = append(out, in.draw("reset", key, in.nextAttempt(key), 0.3))
		}
		return out
	}
	a, b := mk(42), mk(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between same-seed injectors", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("degenerate draw distribution: %d/%d", hits, len(a))
	}
	c := mk(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

func TestRequestKeySeparatesTokenPaths(t *testing.T) {
	mkReq := func(path string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "http://push.test"+path, nil)
		r.Header.Set(ClientHeader, "c1")
		return r
	}
	// Per-token send paths keep separate attempt counters so the draw
	// sequence each token's deliveries see does not depend on how sends
	// to *other* tokens interleave — what lets the push scheduler flush
	// endpoints concurrently without perturbing fault injection. (Safe
	// because tokens are minted from registration identity, not arrival
	// order.)
	a := requestKey(mkReq("/send/tok-000123"), "push.test")
	b := requestKey(mkReq("/send/tok-999999"), "push.test")
	if a == b {
		t.Fatalf("distinct token paths must not share a key: %q", a)
	}
	c := requestKey(mkReq("/poll"), "push.test")
	if a == c {
		t.Fatal("different endpoints share a key")
	}
}

func TestInjected503CarriesRetryAfter(t *testing.T) {
	in := NewInjector(Profile{Seed: 1, Error5xxFraction: 1, RetryAfter: 30 * time.Second},
		fixedNow(epoch), epoch)
	srv, client := wrap(t, in, "site.test", okHandler("hi"))
	resp, err := client.Get(srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want 30", got)
	}
	if in.Stats()["http_503"] != 1 {
		t.Fatalf("stats = %v", in.Stats())
	}
}

func TestResetDropsConnection(t *testing.T) {
	in := NewInjector(Profile{Seed: 1, ResetFraction: 1}, fixedNow(epoch), epoch)
	srv, client := wrap(t, in, "site.test", okHandler("hi"))
	if _, err := client.Get(srv.URL + "/page"); err == nil {
		t.Fatal("reset request succeeded")
	}
	if in.Stats()["reset"] != 1 {
		t.Fatalf("stats = %v", in.Stats())
	}
}

func TestTruncationCutsGETBodies(t *testing.T) {
	in := NewInjector(Profile{Seed: 1, TruncateFraction: 1}, fixedNow(epoch), epoch)
	body := strings.Repeat("x", 4096)
	srv, client := wrap(t, in, "site.test", okHandler(body))
	resp, err := client.Get(srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; want unexpected EOF", len(got))
	}
	if len(got) >= len(body) {
		t.Fatal("body not truncated")
	}

	// POSTs must never be truncated: the side effect already happened.
	resp, err = client.Post(srv.URL+"/page", "text/plain", strings.NewReader("q"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got, _ := io.ReadAll(resp.Body); string(got) != body {
		t.Fatalf("POST response truncated to %d bytes", len(got))
	}
}

func TestPushOutageWindow(t *testing.T) {
	now := epoch
	in := NewInjector(Profile{
		Seed:        1,
		PushHost:    "push.test",
		PushOutages: []Window{{Start: 72 * time.Hour, Dur: 24 * time.Hour}},
	}, func() time.Time { return now }, epoch)
	srv, client := wrap(t, in, "push.test", okHandler("ok"))

	get := func() int {
		resp, err := client.Get(srv.URL + "/poll/tok-1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("pre-outage status = %d", got)
	}
	now = epoch.Add(80 * time.Hour) // inside the window
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("in-outage status = %d, want 503", got)
	}
	now = epoch.Add(97 * time.Hour) // after the window
	if got := get(); got != http.StatusOK {
		t.Fatalf("post-outage status = %d", got)
	}
	if in.Stats()["outage_503"] != 1 {
		t.Fatalf("stats = %v", in.Stats())
	}
}

func TestBlackholeTransport(t *testing.T) {
	now := epoch.Add(10 * time.Hour)
	in := NewInjector(Profile{
		Seed:       1,
		Blackholes: map[string][]Window{"cdn.test": {{Start: 8 * time.Hour, Dur: 4 * time.Hour}}},
	}, func() time.Time { return now }, epoch)

	inner := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: http.NoBody}, nil
	})
	rt := in.WrapTransport(inner)

	req := httptest.NewRequest(http.MethodGet, "http://cdn.test/sw.js", nil)
	if _, err := rt.RoundTrip(req); err == nil || !strings.Contains(err.Error(), "no such host") {
		t.Fatalf("blackholed request err = %v", err)
	}
	req = httptest.NewRequest(http.MethodGet, "http://other.test/", nil)
	if _, err := rt.RoundTrip(req); err != nil {
		t.Fatalf("non-blackholed host failed: %v", err)
	}
	now = epoch.Add(13 * time.Hour)
	req = httptest.NewRequest(http.MethodGet, "http://cdn.test/sw.js", nil)
	if _, err := rt.RoundTrip(req); err != nil {
		t.Fatalf("post-window request failed: %v", err)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestShouldCrashContainerDeterministic(t *testing.T) {
	mk := func() []bool {
		in := NewInjector(Profile{Seed: 9, ContainerCrashFraction: 0.2}, fixedNow(epoch), epoch)
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, in.ShouldCrashContainer(fmt.Sprintf("site-%d#desktop", i), 1+i%5))
		}
		return out
	}
	a, b := mk(), mk()
	crashes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash plan %d not deterministic", i)
		}
		if a[i] {
			crashes++
		}
	}
	if crashes == 0 || crashes > 50 {
		t.Fatalf("crash count %d implausible for fraction 0.2 over 100 draws", crashes)
	}
}

func TestOnlyRestrictsFaultHosts(t *testing.T) {
	in := NewInjector(Profile{Seed: 1, Error5xxFraction: 1, Only: []string{"push.test"}},
		fixedNow(epoch), epoch)
	srv, client := wrap(t, in, "site.test", okHandler("ok"))
	resp, err := client.Get(srv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("host outside Only list got faults (status %d)", resp.StatusCode)
	}
}

func TestTagClientStampsHeader(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(ClientHeader)
	}))
	defer srv.Close()
	c := TagClient(srv.Client(), "seed.example#desktop")
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got != "seed.example#desktop" {
		t.Fatalf("header = %q", got)
	}
}

func TestParseProfile(t *testing.T) {
	if p, err := ParseProfile("none"); err != nil || p != nil {
		t.Fatalf("none: p=%v err=%v", p, err)
	}
	if p, err := ParseProfile(""); err != nil || p != nil {
		t.Fatalf("empty: p=%v err=%v", p, err)
	}
	p, err := ParseProfile("acceptance,seed=7,resets=0.08,blackhole=cdn.test:24h:6h")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.ResetFraction != 0.08 || p.Error5xxFraction != 0.10 {
		t.Fatalf("parsed profile %+v", p)
	}
	if len(p.PushOutages) != 1 || p.PushOutages[0] != (Window{Start: 72 * time.Hour, Dur: 24 * time.Hour}) {
		t.Fatalf("outages %+v", p.PushOutages)
	}
	if ws := p.Blackholes["cdn.test"]; len(ws) != 1 || ws[0] != (Window{Start: 24 * time.Hour, Dur: 6 * time.Hour}) {
		t.Fatalf("blackholes %+v", p.Blackholes)
	}
	if !p.Enabled() {
		t.Fatal("parsed profile reports disabled")
	}
	for _, bad := range []string{"nosuchpreset", "resets=2", "outage=banana", "blackhole=hostonly"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}
