// Package graph implements the bipartite-graph machinery behind the
// paper's meta-clustering step (§5.3): one node set for WPN clusters, one
// for landing-page domains, edges connecting each cluster to the domains
// its messages point at, and connected-component extraction — each
// component is a meta cluster.
package graph

import (
	"fmt"
	"sort"
)

// Bipartite is a bipartite graph between "left" nodes (WPN clusters in
// the pipeline) identified by int ids and "right" nodes (landing
// domains) identified by strings. The zero value is not ready; use
// NewBipartite.
type Bipartite struct {
	left  map[int]map[string]bool
	right map[string]map[int]bool
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite() *Bipartite {
	return &Bipartite{
		left:  make(map[int]map[string]bool),
		right: make(map[string]map[int]bool),
	}
}

// AddLeft ensures a left node exists even if it has no edges (a WPN
// cluster whose messages had no recorded landing domain still forms its
// own meta cluster).
func (g *Bipartite) AddLeft(l int) {
	if _, ok := g.left[l]; !ok {
		g.left[l] = make(map[string]bool)
	}
}

// AddEdge connects left node l to right node r, creating both as needed.
func (g *Bipartite) AddEdge(l int, r string) {
	g.AddLeft(l)
	g.left[l][r] = true
	if _, ok := g.right[r]; !ok {
		g.right[r] = make(map[int]bool)
	}
	g.right[r][l] = true
}

// Lefts returns all left node ids, sorted.
func (g *Bipartite) Lefts() []int {
	out := make([]int, 0, len(g.left))
	for l := range g.left {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Rights returns all right node ids, sorted.
func (g *Bipartite) Rights() []string {
	out := make([]string, 0, len(g.right))
	for r := range g.right {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Degree returns the number of right neighbors of left node l.
func (g *Bipartite) Degree(l int) int { return len(g.left[l]) }

// RightDegree returns the number of left neighbors of right node r.
func (g *Bipartite) RightDegree(r string) int { return len(g.right[r]) }

// Neighbors returns the sorted right neighbors of left node l.
func (g *Bipartite) Neighbors(l int) []string {
	out := make([]string, 0, len(g.left[l]))
	for r := range g.left[l] {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// NumEdges returns the total edge count.
func (g *Bipartite) NumEdges() int {
	n := 0
	for _, rs := range g.left {
		n += len(rs)
	}
	return n
}

// Component is one connected component of a bipartite graph: a meta
// cluster. Left and Right are sorted.
type Component struct {
	Left  []int
	Right []string
}

// String summarizes the component.
func (c Component) String() string {
	return fmt.Sprintf("component(%d clusters, %d domains)", len(c.Left), len(c.Right))
}

// Components returns the connected components of g via breadth-first
// search, ordered by their smallest left node id (components that contain
// only right nodes cannot occur: right nodes exist only with edges).
func (g *Bipartite) Components() []Component {
	seenL := make(map[int]bool, len(g.left))
	var comps []Component

	lefts := g.Lefts()
	for _, start := range lefts {
		if seenL[start] {
			continue
		}
		var comp Component
		seenR := make(map[string]bool)
		queueL := []int{start}
		seenL[start] = true
		for len(queueL) > 0 {
			l := queueL[0]
			queueL = queueL[1:]
			comp.Left = append(comp.Left, l)
			for r := range g.left[l] {
				if seenR[r] {
					continue
				}
				seenR[r] = true
				comp.Right = append(comp.Right, r)
				for l2 := range g.right[r] {
					if !seenL[l2] {
						seenL[l2] = true
						queueL = append(queueL, l2)
					}
				}
			}
		}
		sort.Ints(comp.Left)
		sort.Strings(comp.Right)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Left[0] < comps[j].Left[0] })
	return comps
}
