package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBipartite()
	if got := g.Components(); len(got) != 0 {
		t.Errorf("components of empty graph = %v", got)
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestSingleComponent(t *testing.T) {
	g := NewBipartite()
	g.AddEdge(1, "a.com")
	g.AddEdge(2, "a.com")
	g.AddEdge(2, "b.com")
	g.AddEdge(3, "b.com")
	comps := g.Components()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if !reflect.DeepEqual(comps[0].Left, []int{1, 2, 3}) {
		t.Errorf("Left = %v", comps[0].Left)
	}
	if !reflect.DeepEqual(comps[0].Right, []string{"a.com", "b.com"}) {
		t.Errorf("Right = %v", comps[0].Right)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := NewBipartite()
	g.AddEdge(1, "a.com")
	g.AddEdge(2, "b.com")
	g.AddEdge(3, "b.com")
	g.AddLeft(9) // isolated cluster with no landing domain
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 (%v)", len(comps), comps)
	}
	// Ordered by smallest left id.
	if comps[0].Left[0] != 1 || comps[1].Left[0] != 2 || comps[2].Left[0] != 9 {
		t.Errorf("component order wrong: %v", comps)
	}
	if len(comps[2].Right) != 0 {
		t.Errorf("isolated left node has right nodes: %v", comps[2])
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := NewBipartite()
	g.AddEdge(1, "a.com")
	g.AddEdge(1, "a.com")
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(1) != 1 || g.RightDegree("a.com") != 1 {
		t.Errorf("degrees = %d, %d", g.Degree(1), g.RightDegree("a.com"))
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewBipartite()
	g.AddEdge(1, "c.com")
	g.AddEdge(1, "a.com")
	g.AddEdge(1, "b.com")
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []string{"a.com", "b.com", "c.com"}) {
		t.Errorf("Neighbors = %v", got)
	}
}

func TestLeftsRights(t *testing.T) {
	g := NewBipartite()
	g.AddEdge(5, "z.com")
	g.AddEdge(2, "y.com")
	if got := g.Lefts(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Errorf("Lefts = %v", got)
	}
	if got := g.Rights(); !reflect.DeepEqual(got, []string{"y.com", "z.com"}) {
		t.Errorf("Rights = %v", got)
	}
}

// TestComponentsPartition checks on random graphs that components form a
// partition of the node sets and that no edge crosses components.
func TestComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := NewBipartite()
		nL, nR := 1+rng.Intn(30), 1+rng.Intn(10)
		for e := 0; e < rng.Intn(60); e++ {
			g.AddEdge(rng.Intn(nL), domainName(rng.Intn(nR)))
		}
		for l := 0; l < nL; l++ {
			if rng.Intn(3) == 0 {
				g.AddLeft(l)
			}
		}
		comps := g.Components()
		seenL := make(map[int]int)
		seenR := make(map[string]int)
		for ci, c := range comps {
			for _, l := range c.Left {
				if prev, dup := seenL[l]; dup {
					t.Fatalf("left %d in components %d and %d", l, prev, ci)
				}
				seenL[l] = ci
			}
			for _, r := range c.Right {
				if prev, dup := seenR[r]; dup {
					t.Fatalf("right %q in components %d and %d", r, prev, ci)
				}
				seenR[r] = ci
			}
		}
		if len(seenL) != len(g.Lefts()) {
			t.Fatalf("components cover %d lefts, graph has %d", len(seenL), len(g.Lefts()))
		}
		if len(seenR) != len(g.Rights()) {
			t.Fatalf("components cover %d rights, graph has %d", len(seenR), len(g.Rights()))
		}
		for _, l := range g.Lefts() {
			for _, r := range g.Neighbors(l) {
				if seenL[l] != seenR[r] {
					t.Fatalf("edge (%d,%q) crosses components", l, r)
				}
			}
		}
	}
}

func domainName(i int) string { return string(rune('a'+i)) + ".com" }

func TestComponentString(t *testing.T) {
	c := Component{Left: []int{1, 2}, Right: []string{"a.com"}}
	if got := c.String(); got != "component(2 clusters, 1 domains)" {
		t.Errorf("String = %q", got)
	}
}
