package audit

import (
	"sort"

	"pushadminer/internal/browser"
	"pushadminer/internal/telemetry"
)

// EntriesFromSpans converts telemetry chain-trace spans back into audit
// entries. The telemetry.ChainRecorder emits exactly one span per
// browser event, in event order, with the event kind as the span name
// and the event fields as attributes verbatim — so a trace JSONL file
// is a lossless re-encoding of the audit stream, and reconstructing
// chains from either source yields identical results (asserted by the
// interop test). Spans are ordered by ID (emission order) and numbered
// from 1, matching audit.Writer's sequence numbers.
func EntriesFromSpans(spans []telemetry.Span) []Entry {
	ordered := make([]telemetry.Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	out := make([]Entry, 0, len(ordered))
	for i, sp := range ordered {
		out = append(out, Entry{
			Seq:       i + 1,
			Container: sp.Container,
			Time:      sp.Start,
			Kind:      browser.EventKind(sp.Name),
			Fields:    sp.Attrs,
		})
	}
	return out
}

// ReconstructFromSpans is the one-call forensic path over a telemetry
// trace: spans → entries → chains.
func ReconstructFromSpans(spans []telemetry.Span) []Chain {
	return Reconstruct(EntriesFromSpans(spans))
}
