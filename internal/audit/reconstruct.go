package audit

import (
	"sort"
	"time"

	"pushadminer/internal/browser"
)

// Chain is one reconstructed WPN attack chain: everything that happened
// to a single notification, rebuilt purely from the audit log.
type Chain struct {
	Container string

	// Subscription context.
	Origin       string
	SWURL        string
	Token        string
	RegisteredAt time.Time

	// The notification.
	Title   string
	Body    string
	Target  string
	ShownAt time.Time

	// Click consequences.
	ClickedAt     time.Time
	Clicked       bool
	SWRequests    []string
	RedirectChain []string
	LandingURL    string
	LandingTitle  string
	Crashed       bool
}

// Reconstruct rebuilds WPN chains from raw audit entries. It replays
// each container's event stream in order, tracking the registration
// context and pairing every notification_shown with its subsequent
// click, SW requests, navigation hops and landing page — the forensic
// reconstruction JSgraph-style logs exist to enable.
func Reconstruct(entries []Entry) []Chain {
	// Group by container, preserving sequence order.
	byContainer := map[string][]Entry{}
	var order []string
	for _, e := range entries {
		if _, ok := byContainer[e.Container]; !ok {
			order = append(order, e.Container)
		}
		byContainer[e.Container] = append(byContainer[e.Container], e)
	}
	sort.Strings(order)

	var chains []Chain
	for _, container := range order {
		evs := byContainer[container]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		chains = append(chains, reconstructContainer(container, evs)...)
	}
	return chains
}

// regCtx is the most recent service worker registration seen, keyed by
// SW URL so pushes route to the right context.
type regCtx struct {
	origin string
	token  string
	at     time.Time
}

func reconstructContainer(container string, evs []Entry) []Chain {
	regs := map[string]regCtx{} // SW URL → registration
	var chains []Chain
	// pending holds displayed-but-unclicked notifications (several can
	// be on screen at once); current is the clicked chain collecting
	// its consequences.
	var pending []*Chain
	var current *Chain

	finishCurrent := func() {
		if current != nil {
			chains = append(chains, *current)
			current = nil
		}
	}

	for _, e := range evs {
		switch e.Kind {
		case browser.EvSWRegistered:
			regs[e.Fields["sw"]] = regCtx{
				origin: e.Fields["origin"],
				token:  e.Fields["token"],
				at:     e.Time,
			}

		case browser.EvNotificationShown:
			sw := e.Fields["sw"]
			reg := regs[sw]
			pending = append(pending, &Chain{
				Container:    container,
				Origin:       reg.origin,
				SWURL:        sw,
				Token:        reg.token,
				RegisteredAt: reg.at,
				Title:        e.Fields["title"],
				Body:         e.Fields["body"],
				Target:       e.Fields["target"],
				ShownAt:      e.Time,
			})

		case browser.EvNotificationClicked:
			finishCurrent()
			for i, p := range pending {
				if p.Title == e.Fields["title"] {
					current = p
					current.Clicked = true
					current.ClickedAt = e.Time
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}

		case browser.EvSWRequest:
			if current != nil {
				if u := e.Fields["url"]; u != "" {
					current.SWRequests = append(current.SWRequests, u)
				}
			}

		case browser.EvNavigation:
			if current != nil {
				if u := e.Fields["url"]; u != "" {
					current.RedirectChain = append(current.RedirectChain, u)
				}
			}

		case browser.EvLandingPage:
			if current != nil {
				current.LandingURL = e.Fields["url"]
				current.LandingTitle = e.Fields["title"]
				finishCurrent()
			}

		case browser.EvTabCrashed:
			if current != nil {
				current.Crashed = true
				finishCurrent()
			}
		}
	}
	finishCurrent()
	// Displayed-but-never-clicked notifications still appear as chains.
	for _, p := range pending {
		chains = append(chains, *p)
	}
	return chains
}
