package audit

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/webeco"
)

// TestTraceMatchesAuditReconstruction drives one live browser session
// recording through BOTH pipelines at once — the audit event log and
// the telemetry chain tracer — then reconstructs WPN chains from each
// and requires the results to be byte-identical. This is the
// audit↔telemetry interop guarantee: a -trace-out JSONL file is as good
// a forensic source as the audit log.
func TestTraceMatchesAuditReconstruction(t *testing.T) {
	eco, err := webeco.New(webeco.Config{Seed: 21, Scale: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	defer eco.Close()
	var seed string
	for _, s := range eco.Sites() {
		if s.NPR && s.Network == "Ad-Maven" {
			seed = s.URL
			break
		}
	}
	if seed == "" {
		t.Skip("no suitable site at this scale")
	}

	tracer := telemetry.NewTracer(eco.Clock.Now)
	const container = "container-1"
	br := browser.New(browser.Config{
		Clock:    eco.Clock,
		Client:   eco.Net.ClientNoRedirect(),
		ClientID: container,
		Tracer:   tracer,
	})
	if _, err := br.Visit(seed); err != nil {
		t.Fatal(err)
	}
	deadline := eco.Clock.Now().Add(96 * time.Hour)
	var outcome *browser.ClickOutcome
	for eco.Clock.Now().Before(deadline) && outcome == nil {
		at, ok := eco.NextPushAt()
		if !ok {
			break
		}
		eco.Clock.Advance(at.Sub(eco.Clock.Now()))
		eco.Tick()
		if n, _ := br.PumpPush(""); n > 0 {
			eco.Clock.Advance(5 * time.Second)
			if ocs := br.ProcessClicks(); len(ocs) > 0 {
				outcome = &ocs[0]
			}
		}
	}
	if outcome == nil {
		t.Skip("no notification delivered at this seed")
	}

	// Path 1: the audit log, as the crawler writes it.
	var auditBuf bytes.Buffer
	w := NewWriter(&auditBuf)
	if err := w.LogAll(container, br.Events()); err != nil {
		t.Fatal(err)
	}
	w.Flush() //nolint:errcheck
	entries, err := Read(&auditBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromAudit := Reconstruct(entries)

	// Path 2: the telemetry trace, through an actual JSONL round trip
	// (what -trace-out produces and a later forensic run reads back).
	var traceBuf bytes.Buffer
	if err := tracer.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadSpans(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(entries) {
		t.Fatalf("trace has %d spans, audit has %d entries; the 1:1 event mapping is broken", len(spans), len(entries))
	}
	fromTrace := ReconstructFromSpans(spans)

	// The reconstructions must agree byte-for-byte.
	a, err := json.MarshalIndent(fromAudit, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(fromTrace, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("reconstructions diverge:\naudit:\n%s\ntrace:\n%s", a, b)
	}

	// And at least one chain must span the full subscription → push →
	// click → landing sequence.
	full := 0
	for _, c := range fromTrace {
		if c.Token != "" && c.Clicked && c.LandingURL != "" {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no full subscription→landing chain reconstructed from trace (chains: %+v)", fromTrace)
	}
	t.Logf("%d chains (%d full), %d spans, reconstructions byte-identical", len(fromTrace), full, len(spans))
}

// TestEntriesFromSpansOrdersAndNumbers checks the span→entry mapping on
// a synthetic out-of-order span list.
func TestEntriesFromSpansOrdersAndNumbers(t *testing.T) {
	t0 := time.Unix(1000, 0).UTC()
	spans := []telemetry.Span{
		{ID: 2, Container: "c1", Name: "notification_shown", Start: t0.Add(time.Second), Attrs: map[string]string{"sw": "s", "title": "A"}},
		{ID: 1, Container: "c1", Name: "sw_registered", Start: t0, Attrs: map[string]string{"sw": "s", "origin": "o", "token": "t"}},
	}
	entries := EntriesFromSpans(spans)
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Seq != 1 || entries[0].Kind != browser.EvSWRegistered || !entries[0].Time.Equal(t0) {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Seq != 2 || entries[1].Kind != browser.EvNotificationShown {
		t.Errorf("entry 1 = %+v", entries[1])
	}
	chains := Reconstruct(entries)
	if len(chains) != 1 || chains[0].Token != "t" {
		t.Fatalf("chains = %+v", chains)
	}
}
