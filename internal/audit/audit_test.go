package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/webeco"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []browser.Event{
		{Time: time.Unix(100, 0).UTC(), Kind: browser.EvVisit, Fields: map[string]string{"url": "https://a.test/"}},
		{Time: time.Unix(101, 0).UTC(), Kind: browser.EvPermissionGranted, Fields: map[string]string{"origin": "https://a.test"}},
	}
	if err := w.LogAll("c1", events); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Seq != 1 || entries[1].Seq != 2 {
		t.Errorf("sequence numbers wrong: %+v", entries)
	}
	if entries[0].Container != "c1" || entries[0].Kind != browser.EvVisit {
		t.Errorf("entry 0 = %+v", entries[0])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	entries, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(entries) != 0 {
		t.Errorf("blank-line read: %v, %d entries", err, len(entries))
	}
}

// synthetic event stream helpers
func ev(seq int, kind browser.EventKind, fields map[string]string) Entry {
	return Entry{Seq: seq, Container: "c1", Time: time.Unix(int64(1000+seq), 0).UTC(), Kind: kind, Fields: fields}
}

func TestReconstructSingleChain(t *testing.T) {
	entries := []Entry{
		ev(1, browser.EvSWRegistered, map[string]string{"sw": "https://cdn/sw.js", "origin": "https://pub.test", "token": "tok-1"}),
		ev(2, browser.EvNotificationShown, map[string]string{"sw": "https://cdn/sw.js", "title": "Win", "body": "Claim", "target": "https://t/x"}),
		ev(3, browser.EvNotificationClicked, map[string]string{"title": "Win"}),
		ev(4, browser.EvSWRequest, map[string]string{"url": "https://ads/click?t=x"}),
		ev(5, browser.EvNavigation, map[string]string{"url": "https://t/x", "status": "302"}),
		ev(6, browser.EvNavigation, map[string]string{"url": "https://land/x", "status": "200"}),
		ev(7, browser.EvLandingPage, map[string]string{"url": "https://land/x", "title": "LP"}),
	}
	chains := Reconstruct(entries)
	if len(chains) != 1 {
		t.Fatalf("chains = %d", len(chains))
	}
	c := chains[0]
	if !c.Clicked || c.Title != "Win" || c.Token != "tok-1" || c.Origin != "https://pub.test" {
		t.Errorf("chain = %+v", c)
	}
	if len(c.RedirectChain) != 2 || c.LandingURL != "https://land/x" || c.LandingTitle != "LP" {
		t.Errorf("navigation wrong: %+v", c)
	}
	if len(c.SWRequests) != 1 {
		t.Errorf("sw requests = %v", c.SWRequests)
	}
}

func TestReconstructInterleavedClicks(t *testing.T) {
	entries := []Entry{
		ev(1, browser.EvSWRegistered, map[string]string{"sw": "s", "origin": "o", "token": "t"}),
		ev(2, browser.EvNotificationShown, map[string]string{"sw": "s", "title": "A"}),
		ev(3, browser.EvNotificationShown, map[string]string{"sw": "s", "title": "B"}),
		ev(4, browser.EvNotificationClicked, map[string]string{"title": "A"}),
		ev(5, browser.EvNavigation, map[string]string{"url": "https://la/"}),
		ev(6, browser.EvLandingPage, map[string]string{"url": "https://la/", "title": "LA"}),
		ev(7, browser.EvNotificationClicked, map[string]string{"title": "B"}),
		ev(8, browser.EvNavigation, map[string]string{"url": "https://lb/"}),
		ev(9, browser.EvLandingPage, map[string]string{"url": "https://lb/", "title": "LB"}),
	}
	chains := Reconstruct(entries)
	if len(chains) != 2 {
		t.Fatalf("chains = %d", len(chains))
	}
	byTitle := map[string]Chain{}
	for _, c := range chains {
		byTitle[c.Title] = c
	}
	if byTitle["A"].LandingURL != "https://la/" || byTitle["B"].LandingURL != "https://lb/" {
		t.Errorf("interleaved chains crossed: %+v", byTitle)
	}
}

func TestReconstructCrashAndUnclicked(t *testing.T) {
	entries := []Entry{
		ev(1, browser.EvSWRegistered, map[string]string{"sw": "s", "origin": "o", "token": "t"}),
		ev(2, browser.EvNotificationShown, map[string]string{"sw": "s", "title": "Boom"}),
		ev(3, browser.EvNotificationClicked, map[string]string{"title": "Boom"}),
		ev(4, browser.EvNavigation, map[string]string{"url": "https://crash/"}),
		ev(5, browser.EvTabCrashed, map[string]string{"url": "https://crash/"}),
		ev(6, browser.EvNotificationShown, map[string]string{"sw": "s", "title": "Never clicked"}),
	}
	chains := Reconstruct(entries)
	if len(chains) != 2 {
		t.Fatalf("chains = %d", len(chains))
	}
	byTitle := map[string]Chain{}
	for _, c := range chains {
		byTitle[c.Title] = c
	}
	if !byTitle["Boom"].Crashed {
		t.Error("crash not recorded")
	}
	if byTitle["Never clicked"].Clicked {
		t.Error("unclicked chain marked clicked")
	}
}

// TestReconstructionMatchesLiveBrowser drives a real browser session
// against a synthetic ecosystem, exports its event log through the audit
// writer, and verifies the reconstructed chain matches what the browser
// actually did — the JSgraph guarantee.
func TestReconstructionMatchesLiveBrowser(t *testing.T) {
	eco, err := webeco.New(webeco.Config{Seed: 21, Scale: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	defer eco.Close()
	var seed string
	for _, s := range eco.Sites() {
		if s.NPR && s.Network == "Ad-Maven" {
			seed = s.URL
			break
		}
	}
	if seed == "" {
		t.Skip("no suitable site at this scale")
	}
	br := browser.New(browser.Config{Clock: eco.Clock, Client: eco.Net.ClientNoRedirect()})
	if _, err := br.Visit(seed); err != nil {
		t.Fatal(err)
	}
	deadline := eco.Clock.Now().Add(96 * time.Hour)
	var outcome *browser.ClickOutcome
	for eco.Clock.Now().Before(deadline) && outcome == nil {
		at, ok := eco.NextPushAt()
		if !ok {
			break
		}
		eco.Clock.Advance(at.Sub(eco.Clock.Now()))
		eco.Tick()
		if n, _ := br.PumpPush(""); n > 0 {
			eco.Clock.Advance(5 * time.Second)
			if ocs := br.ProcessClicks(); len(ocs) > 0 {
				outcome = &ocs[0]
			}
		}
	}
	if outcome == nil {
		t.Skip("no notification delivered at this seed")
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.LogAll("container-1", br.Events()); err != nil {
		t.Fatal(err)
	}
	w.Flush() //nolint:errcheck
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	chains := Reconstruct(entries)
	if len(chains) == 0 {
		t.Fatal("no chains reconstructed")
	}
	c := chains[0]
	dn := outcome.Notification
	if c.Title != dn.Notification.Title {
		t.Errorf("title: reconstructed %q, live %q", c.Title, dn.Notification.Title)
	}
	if !c.Clicked {
		t.Error("click lost in reconstruction")
	}
	if nav := outcome.Navigation; nav != nil && !nav.Crashed {
		if c.LandingURL != nav.FinalURL {
			t.Errorf("landing: reconstructed %q, live %q", c.LandingURL, nav.FinalURL)
		}
	}
}
