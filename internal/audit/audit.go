// Package audit implements the JSgraph-style audit logging the paper's
// instrumentation builds on (Li et al., NDSS 2018 — reference [39]):
// fine-grained browser events are streamed to an append-only JSONL log,
// and complete WPN attack chains (subscription → push → notification →
// click → redirections → landing page) can be reconstructed from the log
// alone, after the fact. PushAdMiner's analysis can therefore run either
// on live crawler records or on replayed audit logs.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"pushadminer/internal/browser"
)

// Entry is one logged instrumentation event, tagged with the browser
// (container) it came from.
type Entry struct {
	Seq       int               `json:"seq"`
	Container string            `json:"container"`
	Time      time.Time         `json:"time"`
	Kind      browser.EventKind `json:"kind"`
	Fields    map[string]string `json:"fields,omitempty"`
}

// Writer streams entries as JSONL. It is safe for concurrent use —
// containers log in parallel.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	seq int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Log appends one event.
func (w *Writer) Log(container string, e browser.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	entry := Entry{Seq: w.seq, Container: container, Time: e.Time, Kind: e.Kind, Fields: e.Fields}
	if err := w.enc.Encode(&entry); err != nil {
		return fmt.Errorf("audit: write: %w", err)
	}
	return nil
}

// LogAll appends a browser's full event log under one container id.
func (w *Writer) LogAll(container string, events []browser.Event) error {
	for _, e := range events {
		if err := w.Log(container, e); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains buffered output.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// Read parses a JSONL audit log.
func Read(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("audit: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: read: %w", err)
	}
	return out, nil
}
