package audit

import (
	"strings"
	"testing"
)

// FuzzRead checks the audit-log reader never panics and that
// reconstruction tolerates arbitrary entry streams.
func FuzzRead(f *testing.F) {
	f.Add(`{"seq":1,"container":"c","kind":"visit"}`)
	f.Add("junk")
	f.Add(`{"seq":1,"kind":"notification_shown","fields":{"title":"x"}}` + "\n" +
		`{"seq":2,"kind":"notification_clicked","fields":{"title":"x"}}`)
	f.Fuzz(func(t *testing.T, log string) {
		entries, err := Read(strings.NewReader(log))
		if err != nil {
			return
		}
		Reconstruct(entries)
	})
}
