// Package browser implements the instrumented browser at the heart of
// PushAdMiner's data-collection module (§4). It reproduces, in
// simulation, the observable behaviour of the paper's patched Chromium:
// automatic notification-permission granting (the PermissionContextBase
// hook), service worker registration and push subscription, fine-grained
// logging of SW network requests, notification display (the
// showNotification hook), automatic notification clicks after a short
// delay (the MessageCenter Add/Click hook), and full recording of the
// resulting navigation including every redirect hop and the landing
// page.
package browser

import (
	"fmt"
	"time"
)

// EventKind labels instrumentation log entries.
type EventKind string

// Instrumentation events, in the order they typically occur for one WPN
// (Figure 3's steps).
const (
	EvVisit               EventKind = "visit"
	EvJSPermissionPrompt  EventKind = "js_permission_prompt" // double-permission pre-prompt
	EvPermissionRequested EventKind = "permission_requested"
	EvPermissionGranted   EventKind = "permission_granted"
	EvPermissionDenied    EventKind = "permission_denied"
	EvPermissionQuieted   EventKind = "permission_quieted" // suppressed by quiet UI
	EvSWRegistered        EventKind = "sw_registered"
	EvSWRequest           EventKind = "sw_request"
	EvPageRequest         EventKind = "page_request"
	EvPushReceived        EventKind = "push_received"
	EvNotificationShown   EventKind = "notification_shown"
	EvNotificationClicked EventKind = "notification_clicked"
	EvNavigation          EventKind = "navigation"
	EvRedirect            EventKind = "redirect"
	EvLandingPage         EventKind = "landing_page"
	EvTabCrashed          EventKind = "tab_crashed"
)

// Event is one instrumentation log entry.
type Event struct {
	Time   time.Time
	Kind   EventKind
	Fields map[string]string
}

// String renders the event compactly for debugging.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %v", e.Time.Format(time.RFC3339), e.Kind, e.Fields)
}
