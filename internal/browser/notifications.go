package browser

import (
	"fmt"

	"pushadminer/internal/fcm"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/webpush"
)

// PumpPush polls the push service for every subscription the browser
// holds and dispatches received messages to their service workers,
// causing notifications to be displayed (steps 5–6 of Figure 3). It
// returns the number of push messages processed. pushHost selects the
// push service (fcm.DefaultHost if empty).
//
// PumpPush is the serial composition of PollPush and DispatchPushes;
// the crawler's batched monitor calls the two halves separately so the
// breaker-mediated poll stays serialized while dispatch fans out.
func (b *Browser) PumpPush(pushHost string) (int, error) {
	msgs, err := b.PollPush(pushHost)
	if err != nil {
		return 0, err
	}
	b.DispatchPushes(msgs)
	return len(msgs), nil
}

// PollPush polls the push service for every subscription the browser
// holds and returns the undelivered messages without dispatching them.
// The poll rides the shared per-host circuit breaker, so callers that
// parallelize across browsers must keep PollPush calls in a
// deterministic serial order.
func (b *Browser) PollPush(pushHost string) ([]webpush.Message, error) {
	regs := b.Registrations()
	if len(regs) == 0 {
		return nil, nil
	}
	tokens := make([]string, 0, len(regs))
	for _, r := range regs {
		tokens = append(tokens, r.Sub.Token)
	}
	client := fcm.NewClientWith(b.cfg.Client, pushHost, b.cfg.PushBreaker).WithRetryMetrics(b.met.retry)
	return client.Poll(tokens)
}

// DispatchPushes runs the service-worker push events for messages
// previously returned by PollPush, causing notifications to be
// displayed. It returns the number of messages dispatched (messages for
// unknown tokens are skipped). Dispatch traffic uses the browser's own
// client — no shared breaker — so distinct browsers may dispatch
// concurrently.
func (b *Browser) DispatchPushes(msgs []webpush.Message) int {
	if len(msgs) == 0 {
		return 0
	}
	regs := b.Registrations()
	byToken := make(map[string]*serviceworker.Registration, len(regs))
	for _, r := range regs {
		byToken[r.Sub.Token] = r
	}
	n := 0
	for _, msg := range msgs {
		reg := byToken[msg.Token]
		if reg == nil {
			continue
		}
		b.log(EvPushReceived, map[string]string{"token": msg.Token, "sw": reg.Script.URL})
		b.dispatchPush(reg, msg)
		n++
	}
	return n
}

// dispatchPush runs one push event on a registration, capturing displayed
// notifications and SW requests.
func (b *Browser) dispatchPush(reg *serviceworker.Registration, msg webpush.Message) {
	var reqs []serviceworker.RequestRecord
	b.mu.Lock()
	b.currentSWRequests = &reqs
	firstNew := len(b.notifs)
	b.mu.Unlock()

	adID := ""
	if p, err := webpush.DecodePayload(msg.Data); err == nil {
		adID = p.AdID
	}
	b.runtime.OnShowNotification = func(n webpush.Notification) {
		if err := n.Validate(); err != nil {
			// The browser refuses to display an untitled notification;
			// count it so the loss shows up in degradation reports.
			b.mu.Lock()
			b.droppedNotifs++
			b.mu.Unlock()
			b.met.dropped.Inc()
			return
		}
		dn := &DisplayedNotification{
			Notification: n,
			Registration: reg,
			ShownAt:      b.cfg.Clock.Now(),
			PayloadAdID:  adID,
		}
		b.mu.Lock()
		b.notifs = append(b.notifs, dn)
		b.mu.Unlock()
		b.met.shown.Inc()
		b.log(EvNotificationShown, map[string]string{
			"title": n.Title, "body": n.Body, "target": n.TargetURL,
			"sw": reg.Script.URL, "surface": b.surface(),
		})
	}
	err := b.runtime.DispatchPush(reg, msg)
	b.runtime.OnShowNotification = nil

	b.mu.Lock()
	b.currentSWRequests = nil
	// Attach the dispatch's SW requests to the notifications it showed.
	for _, dn := range b.notifs[firstNew:] {
		dn.SWRequests = reqs
	}
	b.mu.Unlock()
	if err != nil {
		b.log(EvSWRequest, map[string]string{"error": "push dispatch: " + err.Error()})
	}
}

// surface names where notifications appear: the browser's message center
// on desktop, the OS tray on Android (§4.2).
func (b *Browser) surface() string {
	if b.cfg.Device == Mobile {
		return "os_tray"
	}
	return "message_center"
}

// Notifications returns the notifications currently displayed (clicked
// or not).
func (b *Browser) Notifications() []*DisplayedNotification {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*DisplayedNotification, len(b.notifs))
	copy(out, b.notifs)
	return out
}

// ClickOutcome is everything observed from auto-clicking one
// notification: the click-time SW activity and the resulting navigation,
// if any.
type ClickOutcome struct {
	Notification *DisplayedNotification
	SWRequests   []serviceworker.RequestRecord
	Navigation   *Navigation // nil if the click opened no window
	NavError     string
}

// ProcessClicks auto-clicks every displayed notification whose click
// delay has elapsed (the instrumented MessageCenter behaviour, §4.1) and
// follows any window the service worker opens, recording the full
// redirect chain and landing page. On mobile this models the
// accessibility-service tap on the notification tray (§4.2).
func (b *Browser) ProcessClicks() []ClickOutcome {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	var due []*DisplayedNotification
	for _, dn := range b.notifs {
		if !dn.Clicked && !now.Before(dn.ShownAt.Add(b.cfg.ClickDelay)) {
			dn.Clicked = true
			due = append(due, dn)
		}
	}
	b.mu.Unlock()

	var outcomes []ClickOutcome
	for _, dn := range due {
		outcomes = append(outcomes, b.click(dn))
	}
	return outcomes
}

// ClickAction simulates the user tapping a specific action button on a
// displayed notification (§2.2's custom actions). The crawler's default
// automation clicks the body; ClickAction is the API for exercising
// action buttons.
func (b *Browser) ClickAction(dn *DisplayedNotification, action string) ClickOutcome {
	b.mu.Lock()
	dn.Clicked = true
	b.mu.Unlock()
	return b.clickWith(dn, action)
}

func (b *Browser) click(dn *DisplayedNotification) ClickOutcome {
	return b.clickWith(dn, "")
}

func (b *Browser) clickWith(dn *DisplayedNotification, action string) ClickOutcome {
	out := ClickOutcome{Notification: dn}
	b.met.clicked.Inc()
	b.log(EvNotificationClicked, map[string]string{
		"title": dn.Notification.Title, "sw": dn.Registration.Script.URL,
		"action": action,
	})

	var reqs []serviceworker.RequestRecord
	b.mu.Lock()
	b.currentSWRequests = &reqs
	b.pendingWindows = nil
	b.mu.Unlock()

	b.runtime.OnOpenWindow = func(u string) {
		b.mu.Lock()
		b.pendingWindows = append(b.pendingWindows, u)
		b.mu.Unlock()
	}
	err := b.runtime.DispatchNotificationClickAction(dn.Registration, dn.Notification, action)
	b.runtime.OnOpenWindow = nil

	b.mu.Lock()
	b.currentSWRequests = nil
	windows := b.pendingWindows
	b.pendingWindows = nil
	b.mu.Unlock()

	out.SWRequests = reqs
	if err != nil {
		out.NavError = fmt.Sprintf("click dispatch: %v", err)
		return out
	}
	if len(windows) > 0 {
		nav, err := b.Navigate(windows[0])
		out.Navigation = nav
		if err != nil {
			out.NavError = err.Error()
		}
	}
	return out
}
