package browser

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"pushadminer/internal/fcm"
	"pushadminer/internal/page"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/simclock"
	"pushadminer/internal/vnet"
	"pushadminer/internal/webpush"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// fixture is a hand-built miniature push-ad ecosystem: one publisher,
// one ad network, one push service, one landing chain.
type fixture struct {
	net   *vnet.Network
	push  *fcm.Service
	clock *simclock.Simulated
	// subscription captured by the ad network's /subscribe endpoint
	subscribed chan webpush.Subscription
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n, err := vnet.New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	f := &fixture{
		net:        n,
		push:       fcm.New(""),
		clock:      simclock.NewSimulated(t0),
		subscribed: make(chan webpush.Subscription, 16),
	}
	n.Handle(fcm.DefaultHost, f.push)

	// Publisher page that requests notification permission.
	pub := &page.Doc{
		Title:                "Free Movie Streams",
		Content:              "watch movies online free",
		Scripts:              []string{"//adnet tag", "Notification.requestPermission()"},
		RequestsNotification: true,
		SWURL:                "https://cdn.adnet.test/sw.js",
		SubscribeURL:         "https://adnet.test/subscribe",
	}
	n.HandleFunc("pub.test", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(pub.Encode()) //nolint:errcheck
	})

	// Ad network: SW script, ad metadata, click tracker, subscribe sink.
	script := &serviceworker.Script{
		OnPush: []serviceworker.Op{
			{Do: serviceworker.OpFetch, URL: "https://adnet.test/ad?id={{ad_id}}", SaveAs: "ad"},
			{Do: serviceworker.OpShowNotification, Notification: &webpush.Notification{
				Title: "{{ad.title}}", Body: "{{ad.body}}", TargetURL: "{{ad.target}}",
			}},
		},
		OnClick: []serviceworker.Op{
			{Do: serviceworker.OpPostback, URL: "https://adnet.test/click?t={{n.target_url}}"},
			{Do: serviceworker.OpOpenWindow, URL: "{{n.target_url}}"},
		},
	}
	n.HandleFunc("cdn.adnet.test", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		w.Write(script.Source()) //nolint:errcheck
	})
	n.HandleFunc("adnet.test", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ad":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"title":"Your payment info has been leaked","body":"Fix it now","target":"https://redir.test/go"}`)
		case "/click":
			w.WriteHeader(http.StatusNoContent)
		case "/subscribe":
			var sub webpush.Subscription
			body := make([]byte, 4096)
			m, _ := r.Body.Read(body)
			_ = m
			// tolerant parse: token field only
			s := string(body)
			if i := strings.Index(s, `"token":"`); i >= 0 {
				rest := s[i+len(`"token":"`):]
				sub.Token = rest[:strings.IndexByte(rest, '"')]
			}
			select {
			case f.subscribed <- sub:
			default:
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.NotFound(w, r)
		}
	})

	// Redirector and landing page (tech support scam).
	n.HandleFunc("redir.test", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "https://scam.test/support?case=99", http.StatusFound)
	})
	n.HandleFunc("scam.test", func(w http.ResponseWriter, r *http.Request) {
		doc := &page.Doc{Title: "Microsoft Support", Content: "call now 1-800-SCAM your computer is infected"}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})

	// Crashing landing page.
	n.HandleFunc("crash.test", func(w http.ResponseWriter, r *http.Request) {
		doc := &page.Doc{Title: "boom", Crash: true}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})
	return f
}

func (f *fixture) browser(cfg Config) *Browser {
	cfg.Clock = f.clock
	cfg.Client = f.net.ClientNoRedirect()
	return New(cfg)
}

func TestVisitGrantsAndRegisters(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{})
	res, err := b.Visit("https://pub.test/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.RequestedPermission || !res.Granted {
		t.Fatalf("res = %+v", res)
	}
	if res.Registration == nil || res.Registration.Sub.Token == "" {
		t.Fatal("no registration created")
	}
	if got := f.push.NumSubscriptions(); got != 1 {
		t.Errorf("push subscriptions = %d", got)
	}
	select {
	case sub := <-f.subscribed:
		if sub.Token != res.Registration.Sub.Token {
			t.Errorf("ad network learned token %q, browser has %q", sub.Token, res.Registration.Sub.Token)
		}
	default:
		t.Error("ad network never received the subscription")
	}
	// Event sequence includes the key steps in order.
	kinds := []EventKind{}
	for _, e := range b.Events() {
		kinds = append(kinds, e.Kind)
	}
	wantOrder := []EventKind{EvVisit, EvPermissionRequested, EvPermissionGranted, EvSWRegistered}
	pos := 0
	for _, k := range kinds {
		if pos < len(wantOrder) && k == wantOrder[pos] {
			pos++
		}
	}
	if pos != len(wantOrder) {
		t.Errorf("event order missing steps; got %v", kinds)
	}
}

func TestVisitDenyPolicy(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{Policy: Deny})
	res, err := b.Visit("https://pub.test/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.RequestedPermission || res.Granted || res.Registration != nil {
		t.Fatalf("res = %+v", res)
	}
	if len(b.EventsOfKind(EvPermissionDenied)) != 1 {
		t.Error("no denial logged")
	}
}

func TestQuietUIPolicy(t *testing.T) {
	f := newFixture(t)
	quieted := f.browser(Config{Policy: QuietUI, QuietedOrigins: map[string]bool{"https://pub.test": true}})
	res, err := quieted.Visit("https://pub.test/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Error("quieted origin still granted")
	}
	if len(quieted.EventsOfKind(EvPermissionQuieted)) != 1 {
		t.Error("no quieted event")
	}
	// Not on the list → still prompts and grants (§6.4's finding).
	open := f.browser(Config{Policy: QuietUI})
	res, err = open.Visit("https://pub.test/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Error("unlisted origin was not granted under QuietUI")
	}
}

// pushAd drives one full push→display cycle for an already-visited
// browser.
func pushAd(t *testing.T, f *fixture, b *Browser, adID string) {
	t.Helper()
	regs := b.Registrations()
	if len(regs) != 1 {
		t.Fatalf("registrations = %d", len(regs))
	}
	payload := webpush.EncodePayload(webpush.Payload{AdID: adID})
	if err := f.push.Send(webpush.Message{Token: regs[0].Sub.Token, Data: payload}); err != nil {
		t.Fatal(err)
	}
	n, err := b.PumpPush("")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("PumpPush processed %d", n)
	}
}

func TestPushDisplayClickLanding(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{})
	if _, err := b.Visit("https://pub.test/"); err != nil {
		t.Fatal(err)
	}
	pushAd(t, f, b, "ad1")

	notifs := b.Notifications()
	if len(notifs) != 1 {
		t.Fatalf("notifications = %d", len(notifs))
	}
	if notifs[0].Notification.Title != "Your payment info has been leaked" {
		t.Errorf("title = %q", notifs[0].Notification.Title)
	}
	if len(notifs[0].SWRequests) != 1 {
		t.Errorf("push SW requests = %d, want 1 (ad fetch)", len(notifs[0].SWRequests))
	}

	// Not yet due: no clicks.
	if got := b.ProcessClicks(); len(got) != 0 {
		t.Fatalf("clicked before delay: %d", len(got))
	}
	f.clock.Advance(5 * time.Second)
	outcomes := b.ProcessClicks()
	if len(outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	oc := outcomes[0]
	if oc.NavError != "" {
		t.Fatalf("nav error: %s", oc.NavError)
	}
	if len(oc.SWRequests) != 1 || !strings.Contains(oc.SWRequests[0].URL, "/click?") {
		t.Errorf("click SW requests = %+v", oc.SWRequests)
	}
	nav := oc.Navigation
	if nav == nil {
		t.Fatal("no navigation")
	}
	if nav.FinalURL != "https://scam.test/support?case=99" {
		t.Errorf("final URL = %q", nav.FinalURL)
	}
	if len(nav.RedirectChain) != 2 {
		t.Errorf("redirect chain = %v", nav.RedirectChain)
	}
	if nav.Title != "Microsoft Support" || nav.Crashed {
		t.Errorf("landing = %+v", nav)
	}
	if nav.ScreenshotHash == "" {
		t.Error("no screenshot hash")
	}
	// Clicking again is a no-op.
	f.clock.Advance(time.Minute)
	if again := b.ProcessClicks(); len(again) != 0 {
		t.Errorf("re-clicked: %d", len(again))
	}
}

func TestCrashedLandingPage(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{})
	nav, err := b.Navigate("https://crash.test/")
	if err != nil {
		t.Fatal(err)
	}
	if !nav.Crashed {
		t.Error("crash page did not crash the tab")
	}
	if len(b.EventsOfKind(EvTabCrashed)) != 1 {
		t.Error("no tab_crashed event")
	}
	if len(b.EventsOfKind(EvLandingPage)) != 0 {
		t.Error("crashed tab still produced a landing_page event")
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	f := newFixture(t)
	f.net.HandleFunc("loop.test", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "https://loop.test/again", http.StatusFound)
	})
	b := f.browser(Config{MaxRedirects: 4})
	if _, err := b.Navigate("https://loop.test/"); err == nil {
		t.Error("redirect loop not detected")
	}
}

func TestMobileSurfaceAndHeaders(t *testing.T) {
	f := newFixture(t)
	var sawDevice string
	f.net.HandleFunc("mob.test", func(w http.ResponseWriter, r *http.Request) {
		sawDevice = r.Header.Get("X-Sim-Device")
		w.Header().Set("Content-Type", page.ContentType)
		w.Write((&page.Doc{Title: "m"}).Encode()) //nolint:errcheck
	})
	b := f.browser(Config{Device: Mobile, RealDevice: true})
	if _, err := b.Visit("https://mob.test/"); err != nil {
		t.Fatal(err)
	}
	if sawDevice != "physical" {
		t.Errorf("X-Sim-Device = %q", sawDevice)
	}
	if b.surface() != "os_tray" {
		t.Errorf("surface = %q", b.surface())
	}
}

func TestDoublePermissionLogged(t *testing.T) {
	f := newFixture(t)
	doc := &page.Doc{
		Title: "dp", RequestsNotification: true, DoublePermission: true,
		SWURL: "https://cdn.adnet.test/sw.js",
	}
	f.net.HandleFunc("dp.test", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})
	b := f.browser(Config{})
	res, err := b.Visit("https://dp.test/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.DoublePermission || !res.Granted {
		t.Fatalf("res = %+v", res)
	}
	if len(b.EventsOfKind(EvJSPermissionPrompt)) != 1 {
		t.Error("JS prompt not logged")
	}
}

func TestUntitledNotificationRefused(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{})
	if _, err := b.Visit("https://pub.test/"); err != nil {
		t.Fatal(err)
	}
	regs := b.Registrations()
	// Payload-only push whose notification has no title.
	payload := webpush.EncodePayload(webpush.Payload{Notification: &webpush.Notification{Body: "no title"}})
	// Use a script with a default handler for this: craft a direct dispatch.
	reg := &serviceworker.Registration{
		Origin: regs[0].Origin,
		Script: &serviceworker.Script{URL: "https://x/sw.js"},
		Sub:    regs[0].Sub,
	}
	b.dispatchPush(reg, webpush.Message{Token: regs[0].Sub.Token, Data: payload})
	if len(b.Notifications()) != 0 {
		t.Error("untitled notification displayed")
	}
}

func TestVisitNonPushPage(t *testing.T) {
	f := newFixture(t)
	f.net.HandleFunc("plain.test", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html>plain old page</html>")
	})
	b := f.browser(Config{})
	res, err := b.Visit("https://plain.test/")
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestedPermission || res.Granted {
		t.Errorf("plain page: %+v", res)
	}
	if res.Navigation.Content == "" {
		t.Error("plain page content not captured")
	}
}

func TestClickAction(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{})
	if _, err := b.Visit("https://pub.test/"); err != nil {
		t.Fatal(err)
	}
	pushAd(t, f, b, "ad-act")
	dn := b.Notifications()[0]
	oc := b.ClickAction(dn, "open")
	if oc.Navigation == nil {
		t.Fatal("action click produced no navigation")
	}
	if !dn.Clicked {
		t.Error("notification not marked clicked")
	}
	// The action id is logged.
	clicked := b.EventsOfKind(EvNotificationClicked)
	if len(clicked) != 1 || clicked[0].Fields["action"] != "open" {
		t.Errorf("click event = %+v", clicked)
	}
	// Auto-click machinery must not re-click it.
	f.clock.Advance(time.Minute)
	if again := b.ProcessClicks(); len(again) != 0 {
		t.Errorf("action-clicked notification re-clicked: %d", len(again))
	}
}

func TestVisitSWScriptMissing(t *testing.T) {
	f := newFixture(t)
	doc := &page.Doc{
		Title: "broken", RequestsNotification: true,
		SWURL: "https://adnet.test/missing.js",
	}
	f.net.HandleFunc("broken.test", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})
	b := f.browser(Config{})
	if _, err := b.Visit("https://broken.test/"); err == nil {
		t.Error("404 SW script accepted")
	}
}

func TestVisitSWScriptUnparseable(t *testing.T) {
	f := newFixture(t)
	doc := &page.Doc{
		Title: "badsw", RequestsNotification: true,
		SWURL: "https://badsw.test/sw.js",
	}
	f.net.HandleFunc("badsw.test", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/sw.js" {
			fmt.Fprint(w, "function(){ not json }")
			return
		}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})
	b := f.browser(Config{})
	if _, err := b.Visit("https://badsw.test/"); err == nil {
		t.Error("unparseable SW script accepted")
	}
}

func TestVisitPermissionWithoutSWURL(t *testing.T) {
	f := newFixture(t)
	doc := &page.Doc{Title: "nosw", RequestsNotification: true}
	f.net.HandleFunc("nosw.test", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(doc.Encode()) //nolint:errcheck
	})
	b := f.browser(Config{})
	if _, err := b.Visit("https://nosw.test/"); err == nil {
		t.Error("permission request without sw_url accepted")
	}
}

func TestNavigateUnknownHost(t *testing.T) {
	f := newFixture(t)
	b := f.browser(Config{})
	nav, err := b.Navigate("https://no-such-host.test/x")
	if err != nil {
		t.Fatalf("vnet 502 should be a response, not an error: %v", err)
	}
	if nav.Status != http.StatusBadGateway {
		t.Errorf("status = %d", nav.Status)
	}
}
