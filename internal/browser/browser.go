package browser

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"pushadminer/internal/chaos"
	"pushadminer/internal/fcm"
	"pushadminer/internal/httpx"
	"pushadminer/internal/page"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/simclock"
	"pushadminer/internal/simhash"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/textmine"
	"pushadminer/internal/webpush"
)

// DeviceType distinguishes the desktop and mobile (Android) crawler
// environments (§4.1, §4.2).
type DeviceType int

// Device types.
const (
	Desktop DeviceType = iota
	Mobile
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	if d == Mobile {
		return "mobile"
	}
	return "desktop"
}

// PermissionPolicy decides what happens when a page requests notification
// permission.
type PermissionPolicy int

// Permission policies.
const (
	// AutoGrant is the instrumented-browser behaviour: every request is
	// granted (the PermissionContextBase patch).
	AutoGrant PermissionPolicy = iota
	// Deny declines every request.
	Deny
	// QuietUI models Chrome 80's quieter permission UI (§6.4): prompts
	// from origins on a known-abusive list are suppressed; everything
	// else still prompts (and is granted here).
	QuietUI
)

// Config configures a Browser.
type Config struct {
	// Clock drives all timing. Defaults to the real clock.
	Clock simclock.Clock
	// Client performs HTTP; it must route through the simulation's vnet.
	// Redirects must NOT be followed by the client itself (the browser
	// records each hop). Required.
	Client *http.Client
	// Device selects the desktop or mobile environment.
	Device DeviceType
	// RealDevice marks a physical (non-emulated) mobile device. Mobile
	// malicious campaigns fingerprint emulators (§6.1.3); the browser
	// advertises this via a client hint header.
	RealDevice bool
	// Policy is the permission policy. Default AutoGrant.
	Policy PermissionPolicy
	// QuietedOrigins is the abusive-origin list consulted by QuietUI.
	QuietedOrigins map[string]bool
	// ClickDelay is how long after display a notification is
	// auto-clicked. Default 3 seconds.
	ClickDelay time.Duration
	// MaxRedirects bounds navigation redirect chains. Default 10.
	MaxRedirects int
	// NavRetries is how many extra attempts each navigation hop gets
	// when it fails transiently (transport error, 5xx, or 429). A
	// faulted hop otherwise kills the whole redirect chain — the
	// landing page, its screenshot, and any permission prompt it would
	// have shown. Default 5.
	NavRetries int
	// ClientID is a stable identifier for this browser instance,
	// announced with subscriptions so server-side scheduling stays
	// deterministic regardless of crawl parallelism. It is also stamped
	// on every outgoing request (chaos.ClientHeader) so fault injection
	// keys on the browser identity, not on goroutine scheduling.
	ClientID string
	// PushBreaker, if set, is the shared per-host circuit breaker used
	// for push-service calls (register, poll).
	PushBreaker *httpx.Breaker
	// Metrics, if set, receives browser counters (notifications shown/
	// clicked/dropped, navigation hop retries, redirect-chain lengths,
	// httpx retry activity). Nil disables with no overhead.
	Metrics *telemetry.Registry
	// Tracer, if set, records every instrumentation event as a
	// parent-linked span, reconstructing the WPN attack chain live
	// (seed visit → permission → SW install → push → notification →
	// click → redirect hops → landing).
	Tracer *telemetry.Tracer
}

// browserMetrics holds the browser's resolved instruments. All fields
// are nil when telemetry is disabled; every call on them no-ops.
type browserMetrics struct {
	navRetries *telemetry.Counter
	shown      *telemetry.Counter
	clicked    *telemetry.Counter
	dropped    *telemetry.Counter
	hops       *telemetry.Histogram
	retry      *httpx.RetryMetrics
}

// Browser is one instrumented browser instance (one crawler container).
// It is safe for use from a single goroutine, matching one container per
// URL; the event log is internally locked so observers may read
// concurrently.
type Browser struct {
	cfg     Config
	runtime *serviceworker.Runtime
	met     browserMetrics
	rec     *telemetry.ChainRecorder

	mu     sync.Mutex
	events []Event
	regs   []*serviceworker.Registration
	notifs []*DisplayedNotification
	// droppedNotifs counts notifications the browser refused to display
	// (e.g. untitled after a failed ad fetch) — degradation accounting.
	droppedNotifs int

	// currentSWRequests collects SW request records during a dispatch.
	currentSWRequests *[]serviceworker.RequestRecord
	// pendingWindows collects openWindow URLs during a click dispatch.
	pendingWindows []string
}

// DisplayedNotification is a notification sitting in the notification
// center (desktop) or system tray (mobile).
type DisplayedNotification struct {
	Notification webpush.Notification
	Registration *serviceworker.Registration
	ShownAt      time.Time
	Clicked      bool
	SWRequests   []serviceworker.RequestRecord // requests during the push dispatch
	// PayloadAdID is the ad id carried by the push payload, logged by
	// the instrumentation (the mining pipeline does not use it; the
	// evaluation oracle does).
	PayloadAdID string
}

// New creates a Browser.
func New(cfg Config) *Browser {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.ClickDelay <= 0 {
		cfg.ClickDelay = 3 * time.Second
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 10
	}
	if cfg.NavRetries <= 0 {
		cfg.NavRetries = 5
	}
	if cfg.Client == nil {
		panic("browser: Config.Client is required")
	}
	if cfg.ClientID != "" {
		chaos.TagClient(cfg.Client, cfg.ClientID)
	}
	b := &Browser{cfg: cfg}
	if cfg.Metrics != nil {
		b.met = browserMetrics{
			navRetries: cfg.Metrics.Counter("browser_nav_retries"),
			shown:      cfg.Metrics.Counter("browser_notifications_shown"),
			clicked:    cfg.Metrics.Counter("browser_notifications_clicked"),
			dropped:    cfg.Metrics.Counter("browser_notifications_dropped"),
			hops:       cfg.Metrics.Histogram("browser_redirect_hops", telemetry.HopBuckets),
			retry: &httpx.RetryMetrics{
				Retries:         cfg.Metrics.Counter("httpx_retries"),
				RetryAfterWaits: cfg.Metrics.Counter("httpx_retry_after_waits"),
			},
		}
	}
	b.rec = telemetry.NewChainRecorder(cfg.Tracer, cfg.ClientID)
	b.runtime = &serviceworker.Runtime{
		Client: cfg.Client,
		// Transient-failure retries on SW ad fetches: a failed fetch
		// eats the notification being assembled (it displays untitled
		// and is refused), and a lost notification also loses every
		// record behind its click chain, so the budget is sized for
		// double-digit per-request fault rates (at 15% faults, six
		// attempts leave ~1e-5 loss per fetch).
		FetchRetries:       5,
		OnRequest:          b.onSWRequest,
		OnShowNotification: nil, // bound per dispatch
		OnOpenWindow:       nil,
	}
	return b
}

// Device returns the browser's device type.
func (b *Browser) Device() DeviceType { return b.cfg.Device }

func (b *Browser) log(kind EventKind, fields map[string]string) {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	b.events = append(b.events, Event{Time: now, Kind: kind, Fields: fields})
	b.mu.Unlock()
	// Mirror the event into the trace (nil-safe no-op when disabled):
	// same kind, fields, and timestamp, so traces replay through
	// internal/audit exactly like the event log itself.
	b.rec.Event(now, string(kind), fields)
}

// Events returns a snapshot of the instrumentation log.
func (b *Browser) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// EventsOfKind filters the log.
func (b *Browser) EventsOfKind(kind EventKind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// DroppedNotifications reports how many notifications were refused
// display (failed validation), so record loss is never silent.
func (b *Browser) DroppedNotifications() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.droppedNotifs
}

// Registrations returns the browser's service worker registrations.
func (b *Browser) Registrations() []*serviceworker.Registration {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*serviceworker.Registration, len(b.regs))
	copy(out, b.regs)
	return out
}

// RestoreSession reinstates persisted browser state after a shard-worker
// restart: the service worker registrations (with their push
// subscriptions) and the dropped-notification tally. No HTTP happens —
// the registrations were announced to their ad networks when first
// created, and the push service's token state lives server-side, so a
// restored browser resumes polling exactly where the lost one stopped.
func (b *Browser) RestoreSession(regs []*serviceworker.Registration, droppedNotifs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.regs = append([]*serviceworker.Registration(nil), regs...)
	b.droppedNotifs = droppedNotifs
}

// ExportChain snapshots the browser's trace chain-recorder linkage
// state (which spans future events will parent under) for shard-state
// serialization. Returns nil when tracing is disabled.
func (b *Browser) ExportChain() *telemetry.ChainState {
	return b.rec.Export()
}

// RestoreChain reinstates chain-recorder linkage captured by
// ExportChain, so a browser rebuilt after a shard-worker restart keeps
// linking events into the chains the lost browser left open. The span
// IDs are only meaningful against the same tracer instance; a no-op
// when tracing is disabled or st is nil.
func (b *Browser) RestoreChain(st *telemetry.ChainState) {
	b.rec.Restore(st)
}

// ExportCookies snapshots the browser's cookie jar for serialization.
// Cookie identity matters across restarts: tracking ad networks
// frequency-cap returning browsers they recognize by cookie (§8), so a
// restored browser with an empty jar would be re-classified as new and
// receive a different push schedule. Returns nil when the client's jar
// is not an exportable httpx.MemJar.
func (b *Browser) ExportCookies() []httpx.CookieRecord {
	if j, ok := b.cfg.Client.Jar.(*httpx.MemJar); ok {
		return j.Export()
	}
	return nil
}

// RestoreCookies re-imports cookies previously captured by
// ExportCookies. A no-op when the client's jar is not an httpx.MemJar.
func (b *Browser) RestoreCookies(recs []httpx.CookieRecord) {
	if j, ok := b.cfg.Client.Jar.(*httpx.MemJar); ok {
		j.Import(recs)
	}
}

func (b *Browser) onSWRequest(rec serviceworker.RequestRecord) {
	b.log(EvSWRequest, map[string]string{
		"url": rec.URL, "sw": rec.SWURL, "status": fmt.Sprint(rec.Status), "error": rec.Error,
	})
	b.mu.Lock()
	if b.currentSWRequests != nil {
		*b.currentSWRequests = append(*b.currentSWRequests, rec)
	}
	b.mu.Unlock()
}

// get issues a single instrumented GET without following redirects.
func (b *Browser) get(rawURL string, kind EventKind) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("browser: %w", err)
	}
	req.Header.Set("User-Agent", b.userAgent())
	if b.cfg.Device == Mobile {
		real := "emulated"
		if b.cfg.RealDevice {
			real = "physical"
		}
		req.Header.Set("X-Sim-Device", real)
	}
	resp, err := b.cfg.Client.Do(req)
	if err != nil {
		b.log(kind, map[string]string{"url": rawURL, "error": err.Error()})
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, nil, err
	}
	b.log(kind, map[string]string{"url": rawURL, "status": fmt.Sprint(resp.StatusCode)})
	return resp, body, nil
}

func (b *Browser) userAgent() string {
	if b.cfg.Device == Mobile {
		return "Mozilla/5.0 (Linux; Android 7.1.1; Nexus 5) SimChromium/64.0"
	}
	return "Mozilla/5.0 (X11; Linux x86_64) SimChromium/64.0"
}

// Navigation records one navigation with its full redirect chain and the
// rendered landing page.
type Navigation struct {
	RequestedURL  string
	RedirectChain []string // every URL visited, in order, including final
	FinalURL      string
	Status        int
	Title         string
	Content       string
	// ScreenshotHash stands in for the landing-page screenshot the
	// desktop crawler captures: a stable digest of the rendered content.
	ScreenshotHash string
	// ContentSimHash is a locality-sensitive fingerprint of the rendered
	// content; visually similar pages (same scam kit on another domain)
	// land within a few bits of each other.
	ContentSimHash simhash.Hash
	Crashed        bool
	Doc            *page.Doc
}

// Navigate fetches a URL following redirects hop by hop, recording each
// hop, and renders the final page. It reproduces step 8 of Figure 3.
func (b *Browser) Navigate(rawURL string) (*Navigation, error) {
	nav := &Navigation{RequestedURL: rawURL}
	cur := rawURL
	for hop := 0; ; hop++ {
		if hop > b.cfg.MaxRedirects {
			return nav, fmt.Errorf("browser: too many redirects from %s", rawURL)
		}
		nav.RedirectChain = append(nav.RedirectChain, cur)
		resp, body, err := b.get(cur, EvNavigation)
		// Hop-level retries: a transiently failed hop (reset, 5xx,
		// 429) would otherwise abort the chain or render an error page
		// with no document, silently losing the landing page.
		for retry := 0; retry < b.cfg.NavRetries && transientHop(resp, err); retry++ {
			b.met.navRetries.Inc()
			resp, body, err = b.get(cur, EvNavigation)
		}
		if err != nil {
			return nav, err
		}
		if isRedirect(resp.StatusCode) {
			loc := resp.Header.Get("Location")
			next, err := resolveRef(cur, loc)
			if err != nil {
				return nav, fmt.Errorf("browser: bad redirect %q: %w", loc, err)
			}
			b.log(EvRedirect, map[string]string{"from": cur, "to": next})
			cur = next
			continue
		}
		nav.FinalURL = cur
		nav.Status = resp.StatusCode
		b.met.hops.Observe(float64(len(nav.RedirectChain)))
		b.render(nav, resp, body)
		return nav, nil
	}
}

func (b *Browser) render(nav *Navigation, resp *http.Response, body []byte) {
	sum := sha256.Sum256(body)
	nav.ScreenshotHash = hex.EncodeToString(sum[:8])
	defer func() {
		nav.ContentSimHash = simhash.Of(textmine.Tokenize(nav.Title + " " + nav.Content))
	}()
	if strings.HasPrefix(resp.Header.Get("Content-Type"), page.ContentType) {
		if doc, err := page.Decode(body); err == nil {
			nav.Doc = doc
			nav.Title = doc.Title
			nav.Content = doc.Content
			if doc.Crash {
				nav.Crashed = true
				b.log(EvTabCrashed, map[string]string{"url": nav.FinalURL})
				return
			}
		}
	} else {
		nav.Content = string(body)
	}
	b.log(EvLandingPage, map[string]string{
		"url": nav.FinalURL, "title": nav.Title, "screenshot": nav.ScreenshotHash,
	})
}

// transientHop reports whether a navigation hop failed in a way worth
// retrying: transport error, server error, or rate limiting.
func transientHop(resp *http.Response, err error) bool {
	return err != nil || resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
}

func isRedirect(code int) bool {
	switch code {
	case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		return true
	}
	return false
}

func resolveRef(base, ref string) (string, error) {
	bu, err := url.Parse(base)
	if err != nil {
		return "", err
	}
	ru, err := url.Parse(ref)
	if err != nil {
		return "", err
	}
	return bu.ResolveReference(ru).String(), nil
}

// VisitResult describes the outcome of visiting a seed URL.
type VisitResult struct {
	URL                 string
	Navigation          *Navigation
	RequestedPermission bool
	DoublePermission    bool
	Granted             bool
	Registration        *serviceworker.Registration
}

// Visit loads a page and, if it requests notification permission, applies
// the permission policy; on grant it registers the page's service worker
// and creates the push subscription (steps 1–4 of Figure 3).
func (b *Browser) Visit(rawURL string) (*VisitResult, error) {
	res := &VisitResult{URL: rawURL}
	b.log(EvVisit, map[string]string{"url": rawURL, "device": b.cfg.Device.String()})
	nav, err := b.Navigate(rawURL)
	res.Navigation = nav
	if err != nil {
		return res, err
	}
	doc := nav.Doc
	if doc == nil || !doc.RequestsNotification || nav.Crashed {
		return res, nil
	}
	origin := originOf(nav.FinalURL)

	if doc.DoublePermission {
		res.DoublePermission = true
		// The JS-built prompt: the instrumented browser "accepts" it,
		// which triggers the real permission request.
		b.log(EvJSPermissionPrompt, map[string]string{"origin": origin})
	}
	res.RequestedPermission = true
	b.log(EvPermissionRequested, map[string]string{"origin": origin})

	switch b.cfg.Policy {
	case Deny:
		b.log(EvPermissionDenied, map[string]string{"origin": origin})
		return res, nil
	case QuietUI:
		if b.cfg.QuietedOrigins[origin] {
			b.log(EvPermissionQuieted, map[string]string{"origin": origin})
			return res, nil
		}
	}
	res.Granted = true
	b.log(EvPermissionGranted, map[string]string{"origin": origin})

	reg, err := b.registerServiceWorker(origin, doc)
	if err != nil {
		return res, err
	}
	res.Registration = reg
	return res, nil
}

// registerServiceWorker fetches and parses the SW script, subscribes with
// the push service, and announces the subscription to the ad network.
func (b *Browser) registerServiceWorker(origin string, doc *page.Doc) (*serviceworker.Registration, error) {
	if doc.SWURL == "" {
		return nil, fmt.Errorf("browser: page requests notifications but has no sw_url")
	}
	resp, body, err := b.get(doc.SWURL, EvPageRequest)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("browser: SW script %s: status %d", doc.SWURL, resp.StatusCode)
	}
	script, err := serviceworker.Parse(body)
	if err != nil {
		return nil, err
	}
	script.URL = doc.SWURL

	pushHost := doc.PushHost
	if pushHost == "" {
		pushHost = fcm.DefaultHost
	}
	pushClient := fcm.NewClientWith(b.cfg.Client, pushHost, b.cfg.PushBreaker).WithRetryMetrics(b.met.retry)
	sub, err := pushClient.Register(origin, doc.SWURL)
	if err != nil {
		return nil, fmt.Errorf("browser: push subscribe: %w", err)
	}
	reg := &serviceworker.Registration{Origin: origin, Scope: "/", Script: script, Sub: sub}

	b.mu.Lock()
	b.regs = append(b.regs, reg)
	b.mu.Unlock()
	b.log(EvSWRegistered, map[string]string{
		"origin": origin, "sw": doc.SWURL, "token": sub.Token,
	})

	if doc.SubscribeURL != "" {
		// Announce token+endpoint to the ad network server (step 4).
		// The announce is load-bearing — a subscription the network
		// never learns about receives no pushes — so it retries
		// transient failures and treats a non-2xx answer as an error
		// the caller can recover from (the crawler re-visits).
		payload := fmt.Sprintf(`{"token":%q,"endpoint":%q,"origin":%q,"device":%q,"hw":%q,"client":%q}`,
			sub.Token, sub.Endpoint, origin, b.cfg.Device.String(), b.hardware(), b.cfg.ClientID)
		announce := httpx.New(b.cfg.Client, nil, httpx.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		}).WithMetrics(b.met.retry)
		resp, err := announce.Post(doc.SubscribeURL, "application/json", []byte(payload))
		if err != nil {
			return reg, fmt.Errorf("browser: announce subscription: %w", err)
		}
		resp.Body.Close()
		b.log(EvPageRequest, map[string]string{"url": doc.SubscribeURL, "status": fmt.Sprint(resp.StatusCode)})
		if resp.StatusCode/100 != 2 {
			return reg, fmt.Errorf("browser: announce subscription: status %d", resp.StatusCode)
		}
	}
	return reg, nil
}

func (b *Browser) hardware() string {
	if b.cfg.Device == Mobile {
		if b.cfg.RealDevice {
			return "physical"
		}
		return "emulated"
	}
	return "desktop"
}

func originOf(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return rawURL
	}
	return u.Scheme + "://" + u.Hostname()
}
