package webpush

import (
	"encoding/json"
	"testing"
)

func TestNotificationValidate(t *testing.T) {
	if err := (Notification{Title: "Hello"}).Validate(); err != nil {
		t.Errorf("valid notification rejected: %v", err)
	}
	if err := (Notification{Body: "no title"}).Validate(); err == nil {
		t.Error("notification without title accepted")
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	in := Payload{
		Notification: &Notification{
			Title:     "Your payment info has been leaked",
			Body:      "Click to secure your account",
			Icon:      "https://cdn.test/alert.png",
			TargetURL: "https://landing.test/fix",
			Actions:   []Action{{Action: "open", Title: "Fix now"}},
		},
		AdID:         "ad-123",
		CampaignHint: "xyz",
	}
	raw := EncodePayload(in)
	out, err := DecodePayload(raw)
	if err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if out.AdID != in.AdID || out.CampaignHint != in.CampaignHint {
		t.Errorf("scalar fields lost: %+v", out)
	}
	if out.Notification == nil || *&out.Notification.Title != in.Notification.Title {
		t.Errorf("notification lost: %+v", out.Notification)
	}
	if len(out.Notification.Actions) != 1 || out.Notification.Actions[0].Action != "open" {
		t.Errorf("actions lost: %+v", out.Notification.Actions)
	}
}

func TestDecodePayloadErrors(t *testing.T) {
	if _, err := DecodePayload(json.RawMessage(`{bad`)); err == nil {
		t.Error("malformed payload accepted")
	}
	p, err := DecodePayload(json.RawMessage(`{}`))
	if err != nil {
		t.Fatalf("empty object: %v", err)
	}
	if p.Notification != nil {
		t.Error("empty payload grew a notification")
	}
}

func TestMessageJSONOmitsExpired(t *testing.T) {
	m := Message{Token: "t1", Data: json.RawMessage(`{}`), Expired: true}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if _, ok := round["Expired"]; ok {
		t.Error("Expired field serialized")
	}
	if round["token"] != "t1" {
		t.Errorf("token = %v", round["token"])
	}
}
