// Package webpush defines the Web Push data model shared by the push
// service (internal/fcm), the Service Worker runtime
// (internal/serviceworker), and the instrumented browser
// (internal/browser): notification options as exposed by the Notifications
// API, push messages as delivered by the Push API, and subscriptions.
package webpush

import (
	"encoding/json"
	"fmt"
	"time"
)

// Action is a custom button attached to a notification.
type Action struct {
	Action string `json:"action"` // identifier reported on click
	Title  string `json:"title"`  // button label
}

// Notification mirrors the customizable parameters of a web notification
// (§2.2): title, body, target URL, icon, display image, and action
// buttons.
type Notification struct {
	Title     string   `json:"title"`
	Body      string   `json:"body"`
	Icon      string   `json:"icon,omitempty"`
	Image     string   `json:"image,omitempty"`
	TargetURL string   `json:"target_url,omitempty"`
	Tag       string   `json:"tag,omitempty"`
	Actions   []Action `json:"actions,omitempty"`
}

// Validate reports an error for notifications the browser would refuse to
// display (an empty title).
func (n Notification) Validate() error {
	if n.Title == "" {
		return fmt.Errorf("webpush: notification requires a title")
	}
	return nil
}

// Message is a push message as carried by the push service: an opaque
// payload destined to a single service-worker subscription. The unique
// Token identifies the subscription (and thus the SW) the message is for,
// mirroring FCM's per-user, per-SW registration ID.
type Message struct {
	Token   string          `json:"token"`
	Data    json.RawMessage `json:"data"`
	SentAt  time.Time       `json:"sent_at"`
	TTL     time.Duration   `json:"ttl,omitempty"`
	Expired bool            `json:"-"`
}

// Payload is the conventional JSON shape ad networks in this simulation
// put in Message.Data: either a ready-to-show notification, or an ad id
// the service worker resolves by contacting the ad server (as real push
// ad networks do).
type Payload struct {
	Notification *Notification `json:"notification,omitempty"`
	AdID         string        `json:"ad_id,omitempty"`
	CampaignHint string        `json:"c,omitempty"` // opaque tracking blob
}

// EncodePayload marshals a Payload for Message.Data.
func EncodePayload(p Payload) json.RawMessage {
	b, err := json.Marshal(p)
	if err != nil {
		// Payload contains only marshalable fields; this is unreachable.
		panic(fmt.Sprintf("webpush: encode payload: %v", err))
	}
	return b
}

// DecodePayload unmarshals Message.Data produced by EncodePayload.
func DecodePayload(data json.RawMessage) (Payload, error) {
	var p Payload
	if err := json.Unmarshal(data, &p); err != nil {
		return Payload{}, fmt.Errorf("webpush: decode payload: %w", err)
	}
	return p, nil
}

// Subscription represents a push subscription held by a browser: the
// registration token, the push-service endpoint URL the application
// server uses to send to it, and the origin + SW script that own it.
type Subscription struct {
	Token    string `json:"token"`
	Endpoint string `json:"endpoint"`
	Origin   string `json:"origin"`
	SWURL    string `json:"sw_url"`
}
