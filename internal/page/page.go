// Package page defines the document format the synthetic web serves and
// the simulated browser renders. A Doc plays the role of a full HTML page
// plus its JavaScript behaviour: visible text, the embedded ad-network
// code snippets (searchable by the code-search engine), whether and how
// the page asks for notification permission, which service worker it
// registers, and where subscriptions are announced.
package page

import (
	"encoding/json"
	"fmt"
)

// ContentType identifies a serialized Doc on the wire.
const ContentType = "application/vnd.sim.page+json"

// Doc is one synthetic web page.
type Doc struct {
	// Title is the page title.
	Title string `json:"title"`
	// Content is the page's visible text (used for landing-page
	// analysis and manual-verification simulation).
	Content string `json:"content,omitempty"`
	// Scripts holds the page's embedded script source snippets. The
	// code-search engine indexes these; ad network tags place their
	// signature keywords here.
	Scripts []string `json:"scripts,omitempty"`

	// RequestsNotification marks pages that ask for notification
	// permission on visit.
	RequestsNotification bool `json:"requests_notification,omitempty"`
	// DoublePermission marks pages that first show a JavaScript-built
	// prompt mimicking the browser dialog and only trigger the real
	// permission request after that prompt is accepted (§8).
	DoublePermission bool `json:"double_permission,omitempty"`
	// SWURL is the service worker script the page registers after
	// permission is granted.
	SWURL string `json:"sw_url,omitempty"`
	// PushHost is the push-service (FCM) host the subscription is
	// created against.
	PushHost string `json:"push_host,omitempty"`
	// SubscribeURL, if set, receives a POST of the new subscription so
	// the ad network's server learns the token and endpoint.
	SubscribeURL string `json:"subscribe_url,omitempty"`

	// Crash marks landing pages that crash the browser tab when
	// rendered (§6.2 — such WPNs are filtered from the dataset).
	Crash bool `json:"crash,omitempty"`
}

// Encode serializes the Doc.
func (d *Doc) Encode() []byte {
	b, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("page: marshal: %v", err))
	}
	return b
}

// Decode parses a serialized Doc.
func Decode(b []byte) (*Doc, error) {
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("page: decode: %w", err)
	}
	return &d, nil
}
