package page

import "testing"

// FuzzDecode checks the page decoder never panics and that valid docs
// round-trip.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"title":"x"}`))
	f.Add([]byte(`{`))
	f.Add((&Doc{Title: "t", RequestsNotification: true, SWURL: "https://x/sw.js"}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// Re-encoding a decoded doc must parse again.
		if _, err := Decode(d.Encode()); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
