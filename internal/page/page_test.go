package page

import (
	"reflect"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Doc{
		Title:                "Example",
		Content:              "hello world",
		Scripts:              []string{"tag-a", "tag-b"},
		RequestsNotification: true,
		DoublePermission:     true,
		SWURL:                "https://cdn.test/sw.js",
		PushHost:             "fcm.simpush.test",
		SubscribeURL:         "https://ads.test/subscribe",
		Crash:                false,
	}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("malformed doc accepted")
	}
}

func TestZeroValueEncodes(t *testing.T) {
	d := &Doc{}
	out, err := Decode(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.RequestsNotification || out.Crash || out.SWURL != "" {
		t.Errorf("zero doc decoded dirty: %+v", out)
	}
}

func TestOmittedFieldsStayCompact(t *testing.T) {
	d := &Doc{Title: "x"}
	b := d.Encode()
	for _, forbidden := range []string{"sw_url", "crash", "double_permission", "subscribe_url"} {
		if strings.Contains(string(b), forbidden) {
			t.Errorf("zero field %q serialized: %s", forbidden, b)
		}
	}
}
