// Package blocklist simulates the URL blocklisting services the labeling
// stage queries (§5.2): Google Safe Browsing and VirusTotal. Real
// blocklists have two properties the paper measures and the pipeline must
// cope with: *coverage gaps* (most malicious WPN landing URLs are missed
// — <1% flagged on the initial scan) and *detection lag* (a rescan one
// month later flagged 11.31% on VT while GSB stayed ~1%). Both are
// modeled here with per-URL deterministic sampling, so experiments are
// reproducible and order-independent.
//
// The package also provides the manual blocklist the authors maintain
// after manual verification (§5.4).
package blocklist

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"time"

	"pushadminer/internal/httpx"
)

// Config controls a simulated blocklist service's detection behaviour.
type Config struct {
	// Name identifies the service ("gsb", "vt").
	Name string
	// InitialCoverage is the fraction of truly malicious URLs flagged as
	// soon as they are first seen.
	InitialCoverage float64
	// EventualCoverage is the fraction flagged after MaxLag has passed.
	// Must be >= InitialCoverage.
	EventualCoverage float64
	// MaxLag is the time over which detection ramps from initial to
	// eventual coverage.
	MaxLag time.Duration
	// Seed decorrelates services from each other.
	Seed int64
}

// VTDefault returns the VirusTotal-shaped configuration: ~1% initial
// detection rising to ~11.5% after a month (§6.3.2).
func VTDefault() Config {
	return Config{
		Name:             "vt",
		InitialCoverage:  0.01,
		EventualCoverage: 0.115,
		MaxLag:           30 * 24 * time.Hour,
		Seed:             0x56540001,
	}
}

// GSBDefault returns the Google-Safe-Browsing-shaped configuration:
// ~0.5% initial, ~1% eventual (§6.3.2 reports GSB stuck near 1%).
func GSBDefault() Config {
	return Config{
		Name:             "gsb",
		InitialCoverage:  0.005,
		EventualCoverage: 0.01,
		MaxLag:           30 * 24 * time.Hour,
		Seed:             0x47534200,
	}
}

// Verdict is a lookup result.
type Verdict struct {
	URL       string `json:"url"`
	Malicious bool   `json:"malicious"`
	// Engines is the number of detection engines flagging the URL (>= 1
	// when Malicious); it models VT's multi-engine reports.
	Engines int `json:"engines,omitempty"`
}

// Service simulates one URL blocklist. Ground truth (which URLs are in
// fact malicious, and when the simulation first exposed them) is fed by
// the ecosystem via MarkMalicious; Lookup then reports detection as a
// function of elapsed time and the service's coverage curve.
type Service struct {
	cfg Config

	mu        sync.RWMutex
	firstSeen map[string]time.Time
	forced    map[string]bool // test/manual overrides: always detected
}

// New creates a Service from cfg.
func New(cfg Config) *Service {
	if cfg.EventualCoverage < cfg.InitialCoverage {
		cfg.EventualCoverage = cfg.InitialCoverage
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 30 * 24 * time.Hour
	}
	return &Service{
		cfg:       cfg,
		firstSeen: make(map[string]time.Time),
		forced:    make(map[string]bool),
	}
}

// Name returns the service name.
func (s *Service) Name() string { return s.cfg.Name }

// MarkMalicious records ground truth: url is malicious and was first
// active at the given time. Calling it again with an earlier time moves
// the first-seen instant back.
func (s *Service) MarkMalicious(url string, firstSeen time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.firstSeen[url]; !ok || firstSeen.Before(prev) {
		s.firstSeen[url] = firstSeen
	}
}

// Force makes a URL always detected, regardless of sampling. Used to pin
// specific URLs in tests and to model confirmed high-profile detections.
func (s *Service) Force(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forced[url] = true
}

// sample maps a URL to a deterministic uniform value in [0, 1).
func (s *Service) sample(url string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s", s.cfg.Name, s.cfg.Seed, url)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Lookup reports whether the service flags url as malicious at the given
// instant. Benign URLs (never marked) are never flagged — the simulation
// does not model blocklist false positives here; the paper's observed FPs
// are modeled downstream by the manual-verification stage.
func (s *Service) Lookup(url string, now time.Time) Verdict {
	s.mu.RLock()
	seen, isMal := s.firstSeen[url]
	forced := s.forced[url]
	s.mu.RUnlock()
	v := Verdict{URL: url}
	if forced {
		v.Malicious = true
		v.Engines = 3
		return v
	}
	if !isMal {
		return v
	}
	u := s.sample(url)
	if u < s.coverageAt(now.Sub(seen)) {
		v.Malicious = true
		// A second hash decides how many engines concur (1..4).
		v.Engines = 1 + int(s.sample("engines|"+url)*4)
	}
	return v
}

// coverageAt returns the detection probability after the given elapsed
// time, ramping linearly from initial to eventual coverage over MaxLag.
func (s *Service) coverageAt(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return s.cfg.InitialCoverage
	}
	if elapsed >= s.cfg.MaxLag {
		return s.cfg.EventualCoverage
	}
	frac := float64(elapsed) / float64(s.cfg.MaxLag)
	return s.cfg.InitialCoverage + frac*(s.cfg.EventualCoverage-s.cfg.InitialCoverage)
}

// NumKnown reports how many URLs have been marked malicious.
func (s *Service) NumKnown() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.firstSeen)
}

// --- HTTP API ---

type lookupRequest struct {
	URLs []string  `json:"urls"`
	Now  time.Time `json:"now"`
}

type lookupResponse struct {
	Verdicts []Verdict `json:"verdicts"`
}

// ServeHTTP exposes POST /lookup {urls, now} → {verdicts}, so pipeline
// components can query the service over the virtual network like the
// real VT/GSB APIs.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/lookup" {
		http.NotFound(w, r)
		return
	}
	var req lookupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lookup body", http.StatusBadRequest)
		return
	}
	if req.Now.IsZero() {
		req.Now = time.Now()
	}
	resp := lookupResponse{Verdicts: make([]Verdict, 0, len(req.URLs))}
	for _, u := range req.URLs {
		resp.Verdicts = append(resp.Verdicts, s.Lookup(u, req.Now))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // best-effort response
}

// Client queries a blocklist service over HTTP, retrying transient
// failures (rate limits and hiccups are routine with VT/GSB-style APIs).
type Client struct {
	HTTP *http.Client
	Base string // e.g. "https://vt.simpush.test"

	retryOnce sync.Once
	retry     *httpx.Client
}

// Lookup calls POST /lookup for the given URLs at the given instant.
func (c *Client) Lookup(urls []string, now time.Time) ([]Verdict, error) {
	c.retryOnce.Do(func() {
		c.retry = httpx.New(c.HTTP, nil, httpx.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		})
	})
	body, err := json.Marshal(lookupRequest{URLs: urls, Now: now})
	if err != nil {
		return nil, err
	}
	resp, err := c.retry.Post(c.Base+"/lookup", "application/json", body)
	if err != nil {
		return nil, fmt.Errorf("blocklist client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("blocklist client: status %d", resp.StatusCode)
	}
	var out lookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Verdicts, nil
}

// Manual is the hand-curated blocklist built during manual verification
// (§5.4). It is a plain concurrent-safe set of URLs and domains.
type Manual struct {
	mu      sync.RWMutex
	urls    map[string]bool
	domains map[string]bool
}

// NewManual returns an empty manual blocklist.
func NewManual() *Manual {
	return &Manual{urls: make(map[string]bool), domains: make(map[string]bool)}
}

// AddURL records a manually confirmed malicious URL.
func (m *Manual) AddURL(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.urls[url] = true
}

// AddDomain records a manually confirmed malicious domain.
func (m *Manual) AddDomain(domain string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.domains[domain] = true
}

// ContainsURL reports whether url was manually blocklisted.
func (m *Manual) ContainsURL(url string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.urls[url]
}

// ContainsDomain reports whether domain was manually blocklisted.
func (m *Manual) ContainsDomain(domain string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.domains[domain]
}

// URLs returns the blocklisted URLs, sorted.
func (m *Manual) URLs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.urls))
	for u := range m.urls {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of blocklisted URLs.
func (m *Manual) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.urls)
}
