package blocklist

import (
	"fmt"
	"testing"
	"time"

	"pushadminer/internal/vnet"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func TestBenignURLsNeverFlagged(t *testing.T) {
	s := New(VTDefault())
	for i := 0; i < 100; i++ {
		u := fmt.Sprintf("https://benign%d.test/page", i)
		if v := s.Lookup(u, t0.Add(365*24*time.Hour)); v.Malicious {
			t.Fatalf("benign URL %s flagged", u)
		}
	}
}

func TestCoverageRampsOverTime(t *testing.T) {
	s := New(Config{Name: "x", InitialCoverage: 0.05, EventualCoverage: 0.5, MaxLag: 30 * 24 * time.Hour, Seed: 1})
	const n = 2000
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("https://evil%04d.test/lp/offer", i)
		s.MarkMalicious(urls[i], t0)
	}
	count := func(at time.Time) int {
		c := 0
		for _, u := range urls {
			if s.Lookup(u, at).Malicious {
				c++
			}
		}
		return c
	}
	initial := count(t0)
	later := count(t0.Add(31 * 24 * time.Hour))
	if frac := float64(initial) / n; frac < 0.02 || frac > 0.09 {
		t.Errorf("initial detection fraction = %v, want ≈0.05", frac)
	}
	if frac := float64(later) / n; frac < 0.42 || frac > 0.58 {
		t.Errorf("eventual detection fraction = %v, want ≈0.5", frac)
	}
	if later <= initial {
		t.Errorf("detection did not grow: %d -> %d", initial, later)
	}
}

func TestDetectionMonotonic(t *testing.T) {
	s := New(VTDefault())
	u := "https://evil.test/lp"
	s.MarkMalicious(u, t0)
	wasDetected := false
	for d := time.Duration(0); d <= 40*24*time.Hour; d += 24 * time.Hour {
		det := s.Lookup(u, t0.Add(d)).Malicious
		if wasDetected && !det {
			t.Fatalf("detection regressed at +%v", d)
		}
		wasDetected = det
	}
}

func TestLookupDeterministic(t *testing.T) {
	s1, s2 := New(VTDefault()), New(VTDefault())
	at := t0.Add(15 * 24 * time.Hour)
	for i := 0; i < 500; i++ {
		u := fmt.Sprintf("https://evil%d.test/x", i)
		s1.MarkMalicious(u, t0)
		s2.MarkMalicious(u, t0)
		if s1.Lookup(u, at).Malicious != s2.Lookup(u, at).Malicious {
			t.Fatalf("nondeterministic verdict for %s", u)
		}
	}
}

func TestServicesDecorrelated(t *testing.T) {
	vt := New(Config{Name: "vt", InitialCoverage: 0.5, EventualCoverage: 0.5, Seed: 1, MaxLag: time.Hour})
	gsb := New(Config{Name: "gsb", InitialCoverage: 0.5, EventualCoverage: 0.5, Seed: 2, MaxLag: time.Hour})
	agree := 0
	const n = 1000
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("https://evil%d.test/x", i)
		vt.MarkMalicious(u, t0)
		gsb.MarkMalicious(u, t0)
		if vt.Lookup(u, t0).Malicious == gsb.Lookup(u, t0).Malicious {
			agree++
		}
	}
	// Independent 50% coverage → ~50% agreement; identical sampling
	// would give 100%.
	if agree > 650 {
		t.Errorf("services too correlated: %d/%d agreements", agree, n)
	}
}

func TestForce(t *testing.T) {
	s := New(GSBDefault())
	u := "https://definitely-evil.test/lp"
	s.Force(u)
	v := s.Lookup(u, t0)
	if !v.Malicious || v.Engines == 0 {
		t.Errorf("forced URL verdict = %+v", v)
	}
}

func TestMarkMaliciousKeepsEarliest(t *testing.T) {
	s := New(Config{Name: "x", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 3})
	u := "https://evil.test/a"
	s.MarkMalicious(u, t0.Add(time.Hour))
	s.MarkMalicious(u, t0)
	s.MarkMalicious(u, t0.Add(2*time.Hour)) // must not move forward
	if !s.Lookup(u, t0).Malicious {
		t.Error("URL not detected at its earliest first-seen time")
	}
	if s.NumKnown() != 1 {
		t.Errorf("NumKnown = %d", s.NumKnown())
	}
}

func TestEnginesInRange(t *testing.T) {
	s := New(Config{Name: "x", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 9})
	for i := 0; i < 200; i++ {
		u := fmt.Sprintf("https://evil%d.test/x", i)
		s.MarkMalicious(u, t0)
		v := s.Lookup(u, t0)
		if !v.Malicious {
			t.Fatalf("full-coverage service missed %s", u)
		}
		if v.Engines < 1 || v.Engines > 4 {
			t.Fatalf("engines = %d", v.Engines)
		}
	}
}

func TestHTTPLookup(t *testing.T) {
	n, err := vnet.New()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	s := New(Config{Name: "vt", InitialCoverage: 1, EventualCoverage: 1, MaxLag: time.Hour, Seed: 4})
	n.Handle("vt.simpush.test", s)
	s.MarkMalicious("https://evil.test/lp", t0)

	c := &Client{HTTP: n.Client(), Base: "https://vt.simpush.test"}
	verdicts, err := c.Lookup([]string{"https://evil.test/lp", "https://ok.test/"}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	if !verdicts[0].Malicious || verdicts[1].Malicious {
		t.Errorf("verdicts = %+v", verdicts)
	}
}

func TestManual(t *testing.T) {
	m := NewManual()
	if m.ContainsURL("https://x.test/") || m.Len() != 0 {
		t.Error("fresh manual blocklist not empty")
	}
	m.AddURL("https://x.test/lp")
	m.AddURL("https://a.test/lp")
	m.AddDomain("evil.test")
	if !m.ContainsURL("https://x.test/lp") {
		t.Error("added URL missing")
	}
	if !m.ContainsDomain("evil.test") || m.ContainsDomain("good.test") {
		t.Error("domain membership wrong")
	}
	urls := m.URLs()
	if len(urls) != 2 || urls[0] != "https://a.test/lp" {
		t.Errorf("URLs = %v", urls)
	}
}

func TestConfigDefensiveDefaults(t *testing.T) {
	s := New(Config{Name: "bad", InitialCoverage: 0.5, EventualCoverage: 0.1}) // eventual < initial
	u := "https://evil.test/x"
	s.MarkMalicious(u, t0)
	// Must not panic and coverage must never decrease over time.
	a := s.Lookup(u, t0).Malicious
	b := s.Lookup(u, t0.Add(100*24*time.Hour)).Malicious
	if a && !b {
		t.Error("coverage decreased over time")
	}
}
