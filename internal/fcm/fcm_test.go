package fcm

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pushadminer/internal/vnet"
	"pushadminer/internal/webpush"
)

func TestRegisterUniqueTokens(t *testing.T) {
	s := New("")
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		sub := s.Register("https://site.test", "https://site.test/sw.js")
		if seen[sub.Token] {
			t.Fatalf("duplicate token %q", sub.Token)
		}
		seen[sub.Token] = true
		if !strings.HasPrefix(sub.Endpoint, "https://"+DefaultHost+"/send/") {
			t.Fatalf("endpoint = %q", sub.Endpoint)
		}
	}
	if s.NumSubscriptions() != 100 {
		t.Errorf("NumSubscriptions = %d", s.NumSubscriptions())
	}
}

func TestSendPollDrains(t *testing.T) {
	s := New("")
	sub := s.Register("https://a.test", "https://a.test/sw.js")
	for i := 0; i < 3; i++ {
		err := s.Send(webpush.Message{Token: sub.Token, Data: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pending(sub.Token); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	msgs := s.Poll([]string{sub.Token})
	if len(msgs) != 3 {
		t.Fatalf("Poll returned %d, want 3", len(msgs))
	}
	// Order preserved.
	for i, m := range msgs {
		if want := fmt.Sprintf(`{"i":%d}`, i); string(m.Data) != want {
			t.Errorf("msg %d data = %s, want %s", i, m.Data, want)
		}
	}
	if got := s.Pending(sub.Token); got != 0 {
		t.Errorf("Pending after poll = %d, want 0", got)
	}
	if got := s.TotalSent(sub.Token); got != 3 {
		t.Errorf("TotalSent = %d, want 3", got)
	}
}

func TestSendUnknownToken(t *testing.T) {
	s := New("")
	if err := s.Send(webpush.Message{Token: "nope"}); err == nil {
		t.Error("send to unknown token accepted")
	}
	if msgs := s.Poll([]string{"nope"}); len(msgs) != 0 {
		t.Errorf("poll of unknown token returned %d messages", len(msgs))
	}
}

func TestQueueBounded(t *testing.T) {
	s := New("")
	sub := s.Register("https://a.test", "https://a.test/sw.js")
	for i := 0; i < maxQueue+50; i++ {
		s.Send(webpush.Message{Token: sub.Token, Data: json.RawMessage(`{}`)}) //nolint:errcheck
	}
	if got := s.Pending(sub.Token); got != maxQueue {
		t.Errorf("Pending = %d, want %d", got, maxQueue)
	}
}

func TestQueueWhileOffline(t *testing.T) {
	// The crawler suspends containers; messages must accumulate and be
	// delivered on the next poll (the paper's resume behaviour).
	s := New("")
	sub := s.Register("https://a.test", "https://a.test/sw.js")
	s.Send(webpush.Message{Token: sub.Token, Data: json.RawMessage(`{"n":1}`)}) //nolint:errcheck
	// ... container suspended, no polls ...
	s.Send(webpush.Message{Token: sub.Token, Data: json.RawMessage(`{"n":2}`)}) //nolint:errcheck
	if got := len(s.Poll([]string{sub.Token})); got != 2 {
		t.Errorf("resume poll got %d messages, want 2", got)
	}
}

func TestHTTPAPI(t *testing.T) {
	n, err := vnet.New()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	s := New("")
	n.Handle(DefaultHost, s)
	client := NewClient(n.Client(), "")

	sub, err := client.Register("https://pub.test", "https://pub.test/sw.js")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if sub.Token == "" || sub.Endpoint == "" {
		t.Fatalf("incomplete subscription: %+v", sub)
	}
	if sub.Origin != "https://pub.test" {
		t.Errorf("origin = %q", sub.Origin)
	}

	payload := webpush.EncodePayload(webpush.Payload{AdID: "ad-1"})
	if err := client.Send(sub.Endpoint, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs, err := client.Poll([]string{sub.Token})
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if len(msgs) != 1 {
		t.Fatalf("Poll returned %d messages", len(msgs))
	}
	p, err := webpush.DecodePayload(msgs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if p.AdID != "ad-1" {
		t.Errorf("AdID = %q", p.AdID)
	}
}

func TestHTTPSendUnknownToken404(t *testing.T) {
	n, err := vnet.New()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	s := New("")
	n.Handle(DefaultHost, s)
	client := NewClient(n.Client(), "")
	err = client.Send("https://"+DefaultHost+"/send/bogus", json.RawMessage(`{}`))
	if err == nil {
		t.Error("send to bogus token succeeded over HTTP")
	}
}

func TestConcurrentSendPoll(t *testing.T) {
	s := New("")
	sub := s.Register("https://a.test", "https://a.test/sw.js")
	var wg sync.WaitGroup
	const senders, per = 8, 20
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s.Send(webpush.Message{Token: sub.Token, Data: json.RawMessage(`{}`)}) //nolint:errcheck
			}
		}()
	}
	got := 0
	var pollWG sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for j := 0; j < 50; j++ {
				n := len(s.Poll([]string{sub.Token}))
				mu.Lock()
				got += n
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	pollWG.Wait()
	got += len(s.Poll([]string{sub.Token}))
	if got != senders*per {
		t.Errorf("polled %d messages, want %d", got, senders*per)
	}
}
