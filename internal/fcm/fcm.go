// Package fcm implements the simulated push service standing in for
// Firebase Cloud Messaging (§2.2 of the paper): it mediates between
// application/ad servers and browser service workers. Registration mints
// a unique token per user and per service worker plus an endpoint URL the
// server pushes to; messages queue per subscription and are drained when
// the browser polls — which is how the crawler's suspended containers
// receive queued notifications on resume (§6.1.2).
//
// The service is exposed both as direct Go calls and as an HTTP API
// (mounted on a vnet host) because ad-network servers in the synthetic
// ecosystem talk to it over HTTP exactly as they would to real FCM.
package fcm

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	"pushadminer/internal/chaos"
	"pushadminer/internal/httpx"
	"pushadminer/internal/webpush"
)

// DefaultHost is the virtual hostname the push service is mounted on.
const DefaultHost = "fcm.simpush.test"

// maxQueue bounds the per-subscription queue; beyond it the oldest
// messages are dropped, like a real push service collapsing stale
// notifications.
const maxQueue = 256

// Service is the push service. The zero value is not ready; use New.
type Service struct {
	host string

	mu      sync.Mutex
	seq     map[string]int
	subs    map[string]*subscription
	dropped int
}

type subscription struct {
	sub   webpush.Subscription
	queue []webpush.Message
	sent  int
}

// New returns a push service that advertises endpoints on the given
// virtual host (DefaultHost if empty).
func New(host string) *Service {
	if host == "" {
		host = DefaultHost
	}
	return &Service{host: host, seq: make(map[string]int), subs: make(map[string]*subscription)}
}

// Host returns the virtual hostname the service is mounted on.
func (s *Service) Host() string { return s.host }

// Register creates a subscription for a service worker identified by its
// controlling origin and script URL, returning the token and endpoint.
func (s *Service) Register(origin, swURL string) webpush.Subscription {
	return s.register("", origin, swURL)
}

// register mints a subscription token from the registration identity —
// the requesting browser instance (like a real FCM instance token),
// origin, script, and a per-identity sequence — rather than a global
// arrival counter, so a set of concurrent registrations gets the same
// tokens regardless of the order their requests land — what keeps
// parallel crawls byte-identical to serial ones down to checkpoint
// content.
func (s *Service) register(instance, origin, swURL string) webpush.Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := instance + "|" + origin + "|" + swURL
	h := fnv.New64a()
	h.Write([]byte(key))
	token := fmt.Sprintf("tok-%016x-%02d", h.Sum64(), s.seq[key])
	s.seq[key]++
	sub := webpush.Subscription{
		Token:    token,
		Endpoint: fmt.Sprintf("https://%s/send/%s", s.host, token),
		Origin:   origin,
		SWURL:    swURL,
	}
	s.subs[token] = &subscription{sub: sub}
	return sub
}

// Subscription looks a token up.
func (s *Service) Subscription(token string) (webpush.Subscription, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[token]
	if !ok {
		return webpush.Subscription{}, false
	}
	return st.sub, true
}

// Send queues a message for the subscription named by msg.Token. Unknown
// tokens are an error (the subscription was never created or was
// revoked).
func (s *Service) Send(msg webpush.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[msg.Token]
	if !ok {
		return fmt.Errorf("fcm: unknown token %q", msg.Token)
	}
	st.queue = append(st.queue, msg)
	if len(st.queue) > maxQueue {
		s.dropped += len(st.queue) - maxQueue
		st.queue = st.queue[len(st.queue)-maxQueue:]
	}
	st.sent++
	return nil
}

// Dropped reports how many queued messages were collapsed away by the
// per-subscription queue bound — loss that would otherwise be silent.
func (s *Service) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Poll drains and returns all queued messages for the given tokens, in
// send order per token. Unknown tokens are skipped, as a real service
// ignores polls for expired registrations.
func (s *Service) Poll(tokens []string) []webpush.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []webpush.Message
	for _, tok := range tokens {
		st, ok := s.subs[tok]
		if !ok || len(st.queue) == 0 {
			continue
		}
		out = append(out, st.queue...)
		st.queue = nil
	}
	return out
}

// Pending reports how many messages are queued for token.
func (s *Service) Pending(token string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[token]
	if !ok {
		return 0
	}
	return len(st.queue)
}

// TotalSent reports how many messages have ever been accepted for token.
func (s *Service) TotalSent(token string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[token]
	if !ok {
		return 0
	}
	return st.sent
}

// NumSubscriptions reports how many subscriptions exist.
func (s *Service) NumSubscriptions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// --- HTTP API ---

// registerRequest is the POST /register body.
type registerRequest struct {
	Origin string `json:"origin"`
	SWURL  string `json:"sw_url"`
}

// pollRequest is the POST /poll body.
type pollRequest struct {
	Tokens []string `json:"tokens"`
}

// pollResponse is the POST /poll response body.
type pollResponse struct {
	Messages []webpush.Message `json:"messages"`
}

// ServeHTTP implements the push service HTTP API:
//
//	POST /register        {origin, sw_url} → Subscription
//	POST /send/{token}    payload JSON     → 201
//	POST /poll            {tokens}         → {messages}
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/register":
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad register body", http.StatusBadRequest)
			return
		}
		// The tagged client header names the requesting browser
		// instance; folding it into the minting identity gives each
		// browser its own token for the same service worker, exactly
		// like real FCM instance tokens — and makes tokens independent
		// of cross-container registration order.
		writeJSON(w, http.StatusOK, s.register(r.Header.Get(chaos.ClientHeader), req.Origin, req.SWURL))

	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/send/"):
		token := strings.TrimPrefix(r.URL.Path, "/send/")
		var data json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&data); err != nil {
			http.Error(w, "bad payload", http.StatusBadRequest)
			return
		}
		msg := webpush.Message{Token: token, Data: data, SentAt: time.Now()}
		if err := s.Send(msg); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusCreated)

	case r.Method == http.MethodPost && r.URL.Path == "/poll":
		var req pollRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad poll body", http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, pollResponse{Messages: s.Poll(req.Tokens)})

	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response
}

// Client is a small HTTP client for the push service API, used by
// components that talk to FCM over the virtual network. Requests retry
// transient failures with short real-time backoff (see internal/httpx);
// a crawl must not die because one poll hit a hiccup.
type Client struct {
	retry *httpx.Client
	Base  string // e.g. "https://fcm.simpush.test"
}

// NewClient returns a Client for the service mounted at host using the
// given HTTP client.
func NewClient(httpClient *http.Client, host string) *Client {
	return NewClientWith(httpClient, host, nil)
}

// NewClientWith is NewClient with an optional shared circuit breaker:
// while the push host's circuit is open, calls fail fast with an error
// wrapping httpx.ErrCircuitOpen instead of burning retries — one probe
// per cooldown discovers recovery.
func NewClientWith(httpClient *http.Client, host string, breaker *httpx.Breaker) *Client {
	if host == "" {
		host = DefaultHost
	}
	retry := httpx.New(httpClient, nil, httpx.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	})
	if breaker != nil {
		retry.WithBreaker(breaker)
	}
	return &Client{retry: retry, Base: "https://" + host}
}

// WithRetryMetrics attaches retry counters to the client's retrying
// HTTP layer and returns the same client.
func (c *Client) WithRetryMetrics(m *httpx.RetryMetrics) *Client {
	c.retry.WithMetrics(m)
	return c
}

// Register calls POST /register.
func (c *Client) Register(origin, swURL string) (webpush.Subscription, error) {
	var sub webpush.Subscription
	err := c.post("/register", registerRequest{Origin: origin, SWURL: swURL}, &sub)
	return sub, err
}

// Send posts a payload to an endpoint URL (as returned by Register).
func (c *Client) Send(endpoint string, payload json.RawMessage) error {
	resp, err := c.retry.Post(endpoint, "application/json", mustMarshal(payload))
	if err != nil {
		return fmt.Errorf("fcm client: send: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("fcm client: send: status %d", resp.StatusCode)
	}
	return nil
}

// Poll calls POST /poll for the given tokens.
func (c *Client) Poll(tokens []string) ([]webpush.Message, error) {
	var out pollResponse
	if err := c.post("/poll", pollRequest{Tokens: tokens}, &out); err != nil {
		return nil, err
	}
	return out.Messages, nil
}

func (c *Client) post(path string, body, out interface{}) error {
	resp, err := c.retry.Post(c.Base+path, "application/json", mustMarshal(body))
	if err != nil {
		return fmt.Errorf("fcm client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fcm client: %s: status %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func mustMarshal(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fcm: marshal: %v", err))
	}
	return b
}
