module pushadminer

go 1.22
