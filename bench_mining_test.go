// Mining benchmark suite: the §5.1.1 clustering hot path measured at
// two corpus sizes, each in four modes — the pre-optimization naive
// reference, the cached-kernel exact path, the SimHash-pruned fast
// path, and the sub-quadratic LSH-blocked path — plus a large-n run of
// the blocked path alone at sizes where every O(n²) mode is infeasible.
// scripts/bench.sh runs these and records BENCH_mining.json so the perf
// trajectory is tracked across PRs; the parity tests in internal/core
// guarantee the modes agree before the speedup counts.
//
// Run with:
//
//	make bench
package pushadminer_test

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"pushadminer/internal/cluster"
	"pushadminer/internal/core"
	"pushadminer/internal/simhash"
	"pushadminer/internal/telemetry"
	"pushadminer/internal/textmine"
)

// miningSizes are the benchmarked corpus sizes. The small size is the
// verify.sh compile-smoke target; the large one is where the O(n²)
// savings show (the paper mines tens of thousands of WPNs).
var miningSizes = []int{200, 2000}

var (
	miningMu  sync.Mutex
	miningFSs = map[int]*core.FeatureSet{}
)

// miningFeatures builds (once per size) the synthetic-campaign corpus
// and its FeatureSet, so benchmarks measure clustering, not word2vec
// training.
func miningFeatures(b *testing.B, n int) *core.FeatureSet {
	b.Helper()
	miningMu.Lock()
	defer miningMu.Unlock()
	if fs, ok := miningFSs[n]; ok {
		return fs
	}
	fs, err := core.ExtractFeatures(core.SynthWPNRecords(11, n), core.FeatureOptions{
		Word2Vec: textmine.Word2VecConfig{Seed: 11},
	})
	if err != nil {
		b.Fatal(err)
	}
	miningFSs[n] = fs
	return fs
}

// BenchmarkClusterWPNs measures the full first-stage clustering
// (distance matrix, agglomeration, silhouette-chosen cut) end to end.
// The acceptance bar: cached and pruned at n=2000 must beat naive ≥3×.
//
// Each mode also reports a per-stage wall-time breakdown
// ("<stage>-ns/op": distance_matrix, linkage, cut, silhouette) taken
// from one telemetry-instrumented run outside the timed loop, so
// BENCH_mining.json records where the time goes without the counters
// perturbing the headline ns/op.
func BenchmarkClusterWPNs(b *testing.B) {
	for _, n := range miningSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fs := miningFeatures(b, n)
			for _, mode := range []struct {
				name string
				opts core.ClusterOptions
			}{
				{"naive", core.ClusterOptions{Naive: true}},
				{"cached", core.ClusterOptions{}},
				{"pruned", core.ClusterOptions{Prune: core.PruneOptions{Enabled: true}}},
				{"blocked", core.ClusterOptions{Blocked: true}},
			} {
				mode := mode
				b.Run(mode.name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res := core.ClusterWPNs(fs, mode.opts)
						benchSink = res.Silhouette
					}
					b.StopTimer()
					reg := telemetry.New()
					opts := mode.opts
					opts.Metrics = reg
					benchSink = core.ClusterWPNs(fs, opts).Silhouette
					stages := reg.Snapshot().Families["mining_stage_ns"]
					for _, s := range []string{"distance_matrix", "linkage", "blocks", "block_linkage", "cut", "silhouette"} {
						if ns := stages[s]; ns > 0 {
							b.ReportMetric(float64(ns), s+"-ns/op")
						}
					}
					b.StartTimer()
				})
			}
		})
	}
}

// BenchmarkClusterWPNsBlockedLarge runs the blocked path alone at
// corpus sizes where the O(n²) modes are infeasible (the exact matrix
// at n=50k would need 2.5G soft-cosine evaluations and ~5 GB
// condensed storage): LSH blocking keeps the pair work at Σ|B|², which
// the synthetic campaign structure holds near-linear in n. This is the
// measurement behind the "streaming mining" claim — the paper-scale
// corpus clusters in seconds on the blocked path.
//
// Two modes at n=50000: "blocked" (the default memoized cut sweep,
// which re-cuts a block only at its own merge heights) and "fullsweep"
// (-full-sweep: every candidate height re-cuts and re-scores every
// block — the pre-memoization reference). The parity tests guarantee
// they are bit-identical, so the ratio is pure sweep savings. Set
// BENCH_XL=1 to add an n=100000 point (memoized only; the full sweep
// there measures nothing new, just burns minutes).
func BenchmarkClusterWPNsBlockedLarge(b *testing.B) {
	sizes := []int{50000}
	if os.Getenv("BENCH_XL") != "" {
		sizes = append(sizes, 100000)
	}
	for _, n := range sizes {
		modes := []struct {
			name string
			opts core.ClusterOptions
		}{
			{"blocked", core.ClusterOptions{Blocked: true}},
		}
		if n == 50000 {
			modes = append(modes, struct {
				name string
				opts core.ClusterOptions
			}{"fullsweep", core.ClusterOptions{Blocked: true, FullSweep: true}})
		}
		for _, mode := range modes {
			mode := mode
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				fs := miningFeatures(b, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := core.ClusterWPNs(fs, mode.opts)
					benchSink = res.Silhouette
				}
				b.StopTimer()
				reg := telemetry.New()
				opts := mode.opts
				opts.Metrics = reg
				benchSink = core.ClusterWPNs(fs, opts).Silhouette
				snap := reg.Snapshot()
				for _, s := range []string{"blocks", "block_linkage", "cut"} {
					if ns := snap.Families["mining_stage_ns"][s]; ns > 0 {
						b.ReportMetric(float64(ns), s+"-ns/op")
					}
				}
				if pairs := snap.Families["cluster_pairs"]; pairs != nil {
					b.ReportMetric(float64(pairs["exact"]), "exact-pairs")
				}
				// Cut-sweep attribution: wall time per candidate-height
				// bucket ("sweep_<bucket>-ns/op"), folded by bench.sh into a
				// sweep_ns object so BENCH_mining.json shows where the sweep
				// spends its time. Zero buckets (heights the corpus never
				// sampled) are skipped.
				if sweep := snap.Families["mining_sweep_ns"]; sweep != nil {
					buckets := make([]string, 0, len(sweep))
					for k := range sweep {
						buckets = append(buckets, k)
					}
					sort.Strings(buckets)
					for _, k := range buckets {
						if ns := sweep[k]; ns > 0 {
							b.ReportMetric(float64(ns), "sweep_"+k+"-ns/op")
						}
					}
				}
				// Memo accounting: how many (height, block) cells the sweep
				// served from cache vs how many blocks it actually crossed
				// and summed per height — bench.sh folds these into
				// sweep_memo_hits / sweep_blocks_rescored so the speedup is
				// attributable, not just observed. The fullsweep mode
				// reports no memo family (it never consults the cache).
				if memo := snap.Families["mining_sweep_memo"]; memo != nil {
					b.ReportMetric(float64(memo["hit"]), "memo-hits")
				}
				if blocks := snap.Families["mining_sweep_blocks"]; blocks != nil {
					var rescored int64
					for _, v := range blocks {
						rescored += v
					}
					b.ReportMetric(float64(rescored), "blocks-rescored")
				}
				b.StartTimer()
			})
		}
	}
}

// BenchmarkSoftCosineMatrix isolates pairwise distance-matrix
// construction: naive recomputes both self quad-forms per pair, cached
// reads them from the kernel, pruned additionally masks non-candidates
// behind the SimHash filter.
func BenchmarkSoftCosineMatrix(b *testing.B) {
	for _, n := range miningSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fs := miningFeatures(b, n)
			keep := func(i, j int) bool {
				return simhash.SharesBand(fs.Hashes[i], fs.Hashes[j], 8) ||
					simhash.Near(fs.Hashes[i], fs.Hashes[j], 24)
			}
			for _, mode := range []struct {
				name string
				run  func() *cluster.DistMatrix
			}{
				{"naive", func() *cluster.DistMatrix { return cluster.Compute(n, fs.NaiveDistance) }},
				{"cached", func() *cluster.DistMatrix { return cluster.Compute(n, fs.Distance) }},
				{"pruned", func() *cluster.DistMatrix {
					return cluster.ComputeMasked(n, fs.Distance, keep, fs.ApproxDistance)
				}},
			} {
				mode := mode
				b.Run(mode.name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						benchSink = mode.run()
					}
				})
			}
		})
	}
}

// BenchmarkSilhouetteSweep isolates cut selection over a prebuilt
// dendrogram: the serial reference sweep against the parallel
// per-item accumulation sweep (bit-identical results, see the cluster
// package tests).
func BenchmarkSilhouetteSweep(b *testing.B) {
	for _, n := range miningSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fs := miningFeatures(b, n)
			m := cluster.Compute(n, fs.Distance)
			dend := cluster.Agglomerative(m)
			for _, mode := range []struct {
				name string
				run  func() cluster.CutResult
			}{
				{"serial", func() cluster.CutResult {
					return cluster.BestCutConservativeSerial(dend, m, 0, 0.15)
				}},
				{"parallel", func() cluster.CutResult {
					return cluster.BestCutConservative(dend, m, 0, 0.15)
				}},
			} {
				mode := mode
				b.Run(mode.name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						benchSink = mode.run()
					}
				})
			}
		})
	}
}
