// Campaigns runs the full PushAdMiner pipeline on a mid-size synthetic
// web and walks through what the mining stages discovered: the WPN ad
// campaigns, the malicious ones among them, the meta-clusters that tie
// rotated landing domains to one operation, and the paper's headline
// measurement (about half of all WPN ads are malicious).
package main

import (
	"fmt"
	"log"
	"time"

	"pushadminer"
)

func main() {
	log.Println("running study (this crawls a synthetic web over 14 simulated days)...")
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco:              pushadminer.EcosystemConfig{Seed: 7, Scale: 0.02},
		CollectionWindow: 14 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	fmt.Println(pushadminer.Table3(study))
	fmt.Println(pushadminer.Table4(study))
	fmt.Println(pushadminer.Figure4Table(study))
	fmt.Println(pushadminer.Figure5Table(study))
	fmt.Println(pushadminer.Figure6Table(study))

	// Dig into the biggest malicious campaign like an analyst would.
	fmt.Println("Largest malicious ad campaigns (message → landing):")
	a := study.Analysis
	shown := 0
	for ci, c := range a.Clusters.Clusters {
		if !c.IsAdCampaign || !a.MalClusters[ci] || shown >= 3 {
			continue
		}
		shown++
		r := a.FS.Records[c.Members[0]]
		fmt.Printf("  campaign of %d WPNs from %d sites via %d landing domains\n",
			len(c.Members), len(c.SourceDomains), len(c.LandingDomains))
		fmt.Printf("    %q / %q\n    → %s\n", r.Title, r.Body, r.LandingURL)
	}

	ev := study.Evaluate()
	fmt.Printf("\nGround-truth check (simulation only): precision %.3f, recall %.3f\n",
		ev.Precision(), ev.Recall())
}
