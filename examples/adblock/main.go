// Adblock reproduces the paper's Table 6 finding: ad-blocker extensions
// of the study period could not block push-ad traffic because Chromium
// did not expose service-worker network requests to extensions — even
// when their filter rules would have matched — and the EasyList rules of
// the era matched almost none of the push-ad infrastructure anyway.
//
// The example first shows the mechanism on a single hand-made request
// log, then measures it over a full crawl.
package main

import (
	"fmt"
	"log"

	"pushadminer"
	"pushadminer/internal/adblock"
)

func main() {
	fmt.Println("== Mechanism: the same rules, with and without SW visibility")
	engine := adblock.ParseList([]string{
		"||ads.richpush.net^",
		"||trk.richpush.net^$third-party",
	})
	reqs := []adblock.Request{
		// Page-context tag load: extensions see this.
		{URL: "https://ads.richpush.net/tag.js", DocumentURL: "https://blog.example/", Type: adblock.TypeScript},
		// SW-issued ad fetch and click tracker: invisible to extensions.
		{URL: "https://ads.richpush.net/ad?id=c1.k0.d0.n7", DocumentURL: "https://blog.example/", Type: adblock.TypeXHR, FromServiceWorker: true},
		{URL: "https://trk.richpush.net/r?u=https%3A%2F%2Fwin.example", DocumentURL: "https://blog.example/", Type: adblock.TypeXHR, FromServiceWorker: true},
	}
	for _, fixed := range []bool{false, true} {
		ext := adblock.Extension{Name: "blocker", Engine: engine, SeesServiceWorkers: fixed}
		st := ext.Evaluate(reqs)
		fmt.Printf("  SW visibility=%v: rules match %d/%d requests, extension blocks %d\n",
			fixed, st.WouldMatch, st.Total, st.Blocked)
	}

	fmt.Println("\n== Measured over a full crawl (Table 6)")
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco: pushadminer.EcosystemConfig{Seed: 11, Scale: 0.01},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	fmt.Println(pushadminer.Table6(study))
}
