// Quickstart reproduces the paper's Figure 1 motivating example end to
// end on the simulated substrate: a website requests notification
// permission, the instrumented browser auto-grants it and registers the
// site's service worker, a push arrives warning "Your payment info has
// been leaked", the browser auto-clicks it, and the click lands on a
// tech-support scam page — with every step visible in the
// instrumentation log.
//
// Unlike the other examples, this one assembles the substrate by hand
// (virtual network, push service, service worker, browser) to show the
// building blocks beneath pushadminer.RunStudy.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"pushadminer/internal/browser"
	"pushadminer/internal/fcm"
	"pushadminer/internal/page"
	"pushadminer/internal/serviceworker"
	"pushadminer/internal/simclock"
	"pushadminer/internal/vnet"
	"pushadminer/internal/webpush"
)

func main() {
	// A virtual internet on loopback and an FCM-style push service.
	net, err := vnet.New()
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	push := fcm.New("")
	net.Handle(fcm.DefaultHost, push)
	clock := simclock.NewSimulated(time.Date(2019, 9, 1, 12, 0, 0, 0, time.UTC))

	// The publisher: aurolog.ru from the paper's motivating example. It
	// asks for notification permission and registers its own service
	// worker (default behaviour: show the pushed payload, open its
	// target on click).
	doc := &page.Doc{
		Title:                "aurolog.ru",
		Content:              "assorted blog spam",
		RequestsNotification: true,
		SWURL:                "https://aurolog.ru/sw.js",
		SubscribeURL:         "https://aurolog.ru/subscribe",
	}
	sw := &serviceworker.Script{URL: "https://aurolog.ru/sw.js"}
	tokens := make(chan string, 1)
	net.HandleFunc("aurolog.ru", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			w.Header().Set("Content-Type", page.ContentType)
			w.Write(doc.Encode()) //nolint:errcheck
		case "/sw.js":
			w.Header().Set("Content-Type", "application/javascript")
			w.Write(sw.Source()) //nolint:errcheck
		case "/subscribe":
			var sub struct {
				Token string `json:"token"`
			}
			if err := decodeJSON(r, &sub); err == nil {
				select {
				case tokens <- sub.Token:
				default:
				}
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.NotFound(w, r)
		}
	})

	// The scam landing infrastructure: a redirector and the tech
	// support scam page the paper screenshotted.
	net.HandleFunc("go-fix-alert.icu", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "https://secure-helpdesk99.xyz/alert/support-case.html?case=4417", http.StatusFound)
	})
	net.HandleFunc("secure-helpdesk99.xyz", func(w http.ResponseWriter, r *http.Request) {
		scam := &page.Doc{
			Title:   "Microsoft Support Alert",
			Content: "your computer has been blocked call the toll free number 1-888-555-0199 now",
		}
		w.Header().Set("Content-Type", page.ContentType)
		w.Write(scam.Encode()) //nolint:errcheck
	})

	// The instrumented browser: auto-grant permissions, auto-click
	// notifications after 3 seconds, log everything.
	br := browser.New(browser.Config{
		Clock:  clock,
		Client: net.ClientNoRedirect(),
	})

	fmt.Println("== Step 1: visit the page; permission auto-granted; SW registered")
	visit, err := br.Visit("https://aurolog.ru/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   permission requested=%v granted=%v token=%s\n\n",
		visit.RequestedPermission, visit.Granted, visit.Registration.Sub.Token)

	fmt.Println("== Step 2: the operator pushes the malicious notification")
	token := <-tokens
	payload := webpush.EncodePayload(webpush.Payload{
		Notification: &webpush.Notification{
			Title:     "Your payment info has been leaked",
			Body:      "Immediate action required. Click to secure your device now",
			TargetURL: "https://go-fix-alert.icu/c?x=91",
		},
	})
	if err := push.Send(webpush.Message{Token: token, Data: payload}); err != nil {
		log.Fatal(err)
	}
	if _, err := br.PumpPush(""); err != nil {
		log.Fatal(err)
	}
	n := br.Notifications()[0]
	fmt.Printf("   notification displayed: %q / %q\n\n", n.Notification.Title, n.Notification.Body)

	fmt.Println("== Step 3: the instrumented auto-click fires and the browser follows the redirect chain")
	clock.Advance(5 * time.Second)
	outcomes := br.ProcessClicks()
	nav := outcomes[0].Navigation
	for i, hop := range nav.RedirectChain {
		fmt.Printf("   hop %d: %s\n", i+1, hop)
	}
	fmt.Printf("   landing page: %q (%s)\n\n", nav.Title, nav.FinalURL)

	fmt.Println("== Instrumentation log (the data PushAdMiner mines):")
	for _, e := range br.Events() {
		fmt.Printf("   %s %-22s %v\n", e.Time.Format("15:04:05"), e.Kind, e.Fields)
	}
}

func decodeJSON(r *http.Request, v interface{}) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}
