// Mobile reproduces the paper's §4.2/§6.1.3 mobile findings: WPN ads
// pushed to Android devices are tailored to mobile users (fake missed
// calls, fake parcel notices, spoofed chat notifications), and the
// malicious mobile campaigns fingerprint emulators — they only serve
// their payloads to what looks like a physical device, which is why the
// authors crawled with a real Nexus 5.
package main

import (
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"pushadminer"
	"pushadminer/internal/browser"
	"pushadminer/internal/crawler"
)

func main() {
	eco, err := pushadminer.NewEcosystem(pushadminer.EcosystemConfig{Seed: 13, Scale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()
	seeds := eco.SeedURLs()

	crawl := func(name string, physical bool) []*pushadminer.WPNRecord {
		c, err := crawler.New(crawler.Config{
			Clock:            eco.Clock,
			NewClient:        func() *http.Client { return eco.Net.ClientNoRedirect() },
			Driver:           eco,
			Pending:          eco.Push,
			Device:           browser.Mobile,
			RealDevice:       physical,
			CollectionWindow: 7 * 24 * time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(seeds)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s crawl: %d WPNs from %d containers", name, len(res.Records), res.Containers)
		return res.Records
	}

	isMobileBait := func(title string) bool {
		for _, marker := range []string{"Missed call", "Voicemail", "package", "delivery fee", "WhatsApp", "friend request"} {
			if strings.Contains(title, marker) {
				return true
			}
		}
		return false
	}
	countBait := func(records []*pushadminer.WPNRecord) (int, []string) {
		n := 0
		var samples []string
		for _, r := range records {
			if isMobileBait(r.Title) {
				n++
				if len(samples) < 5 {
					samples = append(samples, r.Title)
				}
			}
		}
		return n, samples
	}

	// Physical device first, then an emulator profile against the same
	// ecosystem (fresh subscriptions, same campaigns).
	physRecords := crawl("physical-device", true)
	emuRecords := crawl("emulator", false)

	physBait, samples := countBait(physRecords)
	emuBait, _ := countBait(emuRecords)

	fmt.Printf("\nMobile-tailored malicious WPNs:\n")
	fmt.Printf("  physical device: %d of %d WPNs\n", physBait, len(physRecords))
	fmt.Printf("  emulator:        %d of %d WPNs\n", emuBait, len(emuRecords))
	fmt.Println("\nExamples seen only on the physical device:")
	for _, s := range samples {
		fmt.Printf("  %q\n", s)
	}
	fmt.Println("\nAs in the paper, the emulator profile is starved of the real-device-only campaigns.")
}
