// Forensics demonstrates the JSgraph-lineage audit pipeline (§4.1): the
// instrumented browser's fine-grained event log is exported as an
// append-only JSONL audit log, and complete WPN attack chains —
// subscription → push → notification → auto-click → redirect chain →
// landing page — are reconstructed from the log alone, as an incident
// responder would do after the fact.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"pushadminer"
	"pushadminer/internal/audit"
	"pushadminer/internal/browser"
)

func main() {
	eco, err := pushadminer.NewEcosystem(pushadminer.EcosystemConfig{Seed: 21, Scale: 0.004})
	if err != nil {
		log.Fatal(err)
	}
	defer eco.Close()

	// Subscribe one container to an Ad-Maven publisher and collect a
	// few notifications.
	var seed string
	for _, s := range eco.Sites() {
		if s.NPR && s.Network == "Ad-Maven" {
			seed = s.URL
			break
		}
	}
	br := browser.New(browser.Config{Clock: eco.Clock, Client: eco.Net.ClientNoRedirect()})
	if _, err := br.Visit(seed); err != nil {
		log.Fatal(err)
	}
	deadline := eco.Clock.Now().Add(7 * 24 * time.Hour)
	clicks := 0
	for eco.Clock.Now().Before(deadline) && clicks < 3 {
		at, ok := eco.NextPushAt()
		if !ok {
			break
		}
		eco.Clock.Advance(at.Sub(eco.Clock.Now()))
		eco.Tick()
		if n, _ := br.PumpPush(""); n > 0 {
			eco.Clock.Advance(5 * time.Second)
			clicks += len(br.ProcessClicks())
		}
	}

	// Export the raw instrumentation stream as an audit log.
	var logBuf bytes.Buffer
	w := audit.NewWriter(&logBuf)
	if err := w.LogAll("container-001", br.Events()); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Audit log: %d bytes of JSONL, %d events\n", logBuf.Len(), len(br.Events()))
	fmt.Println("   first lines:")
	preview := logBuf.Bytes()
	for i, line := 0, 0; i < len(preview) && line < 3; i++ {
		if preview[i] == '\n' {
			fmt.Printf("   %s\n", preview[:i])
			preview = preview[i+1:]
			i = 0
			line++
		}
	}

	// Reconstruct attack chains from the log alone.
	entries, err := audit.Read(&logBuf)
	if err != nil {
		log.Fatal(err)
	}
	chains := audit.Reconstruct(entries)
	fmt.Printf("\n== Reconstructed %d WPN chains from the log:\n\n", len(chains))
	for i, c := range chains {
		fmt.Printf("chain %d: %q (shown %s)\n", i+1, c.Title, c.ShownAt.Format("15:04:05"))
		fmt.Printf("  origin %s via %s\n", c.Origin, c.SWURL)
		if !c.Clicked {
			fmt.Println("  never clicked")
			continue
		}
		for h, hop := range c.RedirectChain {
			fmt.Printf("  hop %d: %s\n", h+1, hop)
		}
		switch {
		case c.Crashed:
			fmt.Println("  → tab crashed")
		case c.LandingURL != "":
			fmt.Printf("  → landed on %q (%s)\n", c.LandingTitle, c.LandingURL)
		}
		fmt.Println()
	}
}
