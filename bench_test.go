// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation section, plus the follow-up experiments and the ablations
// DESIGN.md calls out. Each benchmark regenerates its artifact and, on
// the first run, logs the measured values next to the paper's (see
// EXPERIMENTS.md for the recorded comparison).
//
// Run with:
//
//	go test -bench=. -benchmem
package pushadminer_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pushadminer"
	"pushadminer/internal/cluster"
	"pushadminer/internal/core"
	"pushadminer/internal/webeco"
)

// benchStudy is the shared study every artifact regenerates from; the
// crawl itself is measured separately by BenchmarkFullStudy.
var (
	benchOnce  sync.Once
	benchS     *pushadminer.Study
	benchErr   error
	benchScale = 0.02
)

func study(b *testing.B) *pushadminer.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchS, benchErr = pushadminer.RunStudy(pushadminer.StudyConfig{
			Eco: pushadminer.EcosystemConfig{Seed: 2, Scale: benchScale},
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchS
}

func logOnce(b *testing.B, t *pushadminer.Table) {
	if b.N >= 1 {
		b.Logf("\n%s", t)
	}
}

// BenchmarkFullStudy measures the complete reproduction: ecosystem
// generation, desktop + mobile crawls over 14 simulated days, and the
// full mining pipeline.
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := pushadminer.RunStudy(pushadminer.StudyConfig{
			Eco: pushadminer.EcosystemConfig{Seed: int64(100 + i), Scale: 0.005},
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkTable1_SeedDiscovery regenerates Table 1 (code-search URLs
// and notification permission requests per seed keyword).
func BenchmarkTable1_SeedDiscovery(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Table1(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkTable2_AlexaRanks regenerates Table 2 (rank buckets of NPR
// domains).
func BenchmarkTable2_AlexaRanks(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Table2(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkTable3_Summary regenerates Table 3 (summary of findings,
// including the 51%-malicious headline).
func BenchmarkTable3_Summary(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Table3(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkTable4_Stages regenerates Table 4 (results at clustering
// stages) — the full pipeline rerun over the collected records, since
// the table is the pipeline's stage counters.
func BenchmarkTable4_Stages(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.RunPipeline(s.Records, core.PipelineOptions{
			Services: []core.BlocklistLookup{
				core.ServiceLookup{S: s.Eco.VT},
				core.ServiceLookup{S: s.Eco.GSB},
			},
			Scans: []time.Time{s.Eco.Clock.Now()},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = a
	}
	b.StopTimer()
	logOnce(b, pushadminer.Table4(s))
}

// BenchmarkTable5_Singletons regenerates Table 5 (singleton cluster
// examples after meta clustering).
func BenchmarkTable5_Singletons(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Table5(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkTable6_AdBlockers regenerates Table 6 (ad blockers vs SW
// push-ad requests): every SW request replayed through the filter
// engine under both visibility models.
func BenchmarkTable6_AdBlockers(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Table6(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkFigure4_ClusterExamples regenerates Figure 4's cluster
// archetypes (malicious campaign, duplicate-ads campaign, single-source
// alerts, singleton).
func BenchmarkFigure4_ClusterExamples(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Figure4Table(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkFigure5_MetaClusters regenerates Figure 5's meta-cluster
// examples (bipartite components over landing domains).
func BenchmarkFigure5_MetaClusters(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Figure5Table(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkFigure6_AdNetworkDistribution regenerates Figure 6 (WPN ads
// and malicious WPN ads per ad network).
func BenchmarkFigure6_AdNetworkDistribution(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.Figure6Table(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkRecentMeasurements regenerates the §6.3.3 revisit experiment
// (paper: 300 sites, 305 notifications, 198 ads, 48 malicious, VT
// catches 15).
func BenchmarkRecentMeasurements(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var rr *pushadminer.RevisitResult
	for i := 0; i < b.N; i++ {
		var err error
		rr, err = pushadminer.RunRevisit(s, 300, 30*24*time.Hour, 5*24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("revisit: %+v (paper: 300 revisited, 305 WPNs, 198 ads, 48 malicious, 15 VT-flagged)", rr)
}

// BenchmarkPilotWaitTimes regenerates the §6.1.2 pilot (98% of first
// notifications within 15 minutes).
func BenchmarkPilotWaitTimes(b *testing.B) {
	var pr *pushadminer.PilotResult
	for i := 0; i < b.N; i++ {
		eco, err := pushadminer.NewEcosystem(pushadminer.EcosystemConfig{Seed: int64(40 + i), Scale: 0.005})
		if err != nil {
			b.Fatal(err)
		}
		pr, err = pushadminer.RunPilot(eco, 96*time.Hour, 7*24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		eco.Close()
	}
	b.StopTimer()
	b.Logf("%s (paper: 98%% within 15 minutes)\n%s", pr, pushadminer.PilotCDFTable(pr))
}

// BenchmarkDoublePermission regenerates the §8 double-permission check
// (paper: 49 of 200 revisited sites).
func BenchmarkDoublePermission(b *testing.B) {
	var res *pushadminer.DoublePermissionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pushadminer.RunDoublePermissionCheck(int64(60+i), 0.005, 0.25, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("double permission: %d of %d (paper: 49 of 200)", res.DoublePermission, res.Checked)
}

// BenchmarkQuietUI regenerates the §6.4 Chrome-80 quiet-UI revisit
// (paper: all revisited sites could still prompt).
func BenchmarkQuietUI(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var res *pushadminer.QuietUIResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pushadminer.RunQuietUICheck(s, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("quiet UI: %d of %d still prompted (paper: all)", res.StillPrompted, res.Revisited)
}

// BenchmarkAdvertiserCost regenerates the §3 ethics cost estimation
// (paper: max $1.12, avg $0.04 per advertiser).
func BenchmarkAdvertiserCost(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.CostTable(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkAblationClusterCut compares the silhouette-chosen
// conservative cut against fixed dendrogram cuts (design decision 1 in
// DESIGN.md).
func BenchmarkAblationClusterCut(b *testing.B) {
	s := study(b)
	for _, cut := range []struct {
		name string
		opts core.ClusterOptions
	}{
		{"conservative-silhouette", core.ClusterOptions{}},
		{"best-silhouette", core.ClusterOptions{ConservativeTol: -1}},
		{"fixed-0.15", core.ClusterOptions{FixedCutHeight: 0.15}},
		{"fixed-0.40", core.ClusterOptions{FixedCutHeight: 0.40}},
		{"single-linkage", core.ClusterOptions{Linkage: cluster.Single}},
		{"complete-linkage", core.ClusterOptions{Linkage: cluster.Complete}},
	} {
		cut := cut
		b.Run(cut.name, func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				a, err := core.RunPipeline(s.Records, core.PipelineOptions{
					Cluster: cut.opts,
					Services: []core.BlocklistLookup{
						core.ServiceLookup{S: s.Eco.VT}, core.ServiceLookup{S: s.Eco.GSB},
					},
					Scans: []time.Time{s.Eco.Clock.Now()},
				})
				if err != nil {
					b.Fatal(err)
				}
				rep = a.Report
			}
			b.StopTimer()
			b.Logf("%s: clusters=%d singletons=%d campaigns=%d ads=%d malicious=%d cut=%.3f",
				cut.name, rep.Clusters, rep.Singletons, rep.AdCampaignClusters,
				rep.TotalAds, rep.TotalMaliciousAds, rep.CutHeight)
		})
	}
}

// BenchmarkAblationFeatures compares the full feature set (soft-cosine
// text + URL-path Jaccard) against each alone (design decision 2).
func BenchmarkAblationFeatures(b *testing.B) {
	s := study(b)
	for _, f := range []struct {
		name string
		opts core.FeatureOptions
	}{
		{"text+path", core.FeatureOptions{}},
		{"text-only", core.FeatureOptions{DisablePath: true}},
		{"path-only", core.FeatureOptions{DisableText: true}},
		{"tfidf-text+path", core.FeatureOptions{TFIDF: true}},
	} {
		f := f
		b.Run(f.name, func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				a, err := core.RunPipeline(s.Records, core.PipelineOptions{
					Features: f.opts,
					Services: []core.BlocklistLookup{
						core.ServiceLookup{S: s.Eco.VT}, core.ServiceLookup{S: s.Eco.GSB},
					},
					Scans: []time.Time{s.Eco.Clock.Now()},
				})
				if err != nil {
					b.Fatal(err)
				}
				rep = a.Report
			}
			b.StopTimer()
			b.Logf("%s: clusters=%d campaigns=%d ads=%d malicious=%d",
				f.name, rep.Clusters, rep.AdCampaignClusters, rep.TotalAds, rep.TotalMaliciousAds)
		})
	}
}

// BenchmarkAblationStages toggles label propagation and meta-clustering
// (design decisions 1 and 3).
func BenchmarkAblationStages(b *testing.B) {
	s := study(b)
	for _, st := range []struct {
		name string
		mod  func(*core.PipelineOptions)
	}{
		{"full", func(*core.PipelineOptions) {}},
		{"no-propagation", func(o *core.PipelineOptions) { o.DisablePropagation = true }},
		{"no-meta", func(o *core.PipelineOptions) { o.DisableMeta = true }},
	} {
		st := st
		b.Run(st.name, func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				opts := core.PipelineOptions{
					Services: []core.BlocklistLookup{
						core.ServiceLookup{S: s.Eco.VT}, core.ServiceLookup{S: s.Eco.GSB},
					},
					Scans: []time.Time{s.Eco.Clock.Now()},
				}
				st.mod(&opts)
				a, err := core.RunPipeline(s.Records, opts)
				if err != nil {
					b.Fatal(err)
				}
				rep = a.Report
			}
			b.StopTimer()
			b.Logf("%s: ads=%d knownMal=%d addMal=%d malicious=%d",
				st.name, rep.TotalAds, rep.TotalKnownMal, rep.TotalAddMal, rep.TotalMaliciousAds)
		})
	}
}

// BenchmarkEvasionExperiment contrasts crawls with operator domain
// rotation off and on (§5.2's evasion behaviour) under aggressive
// blocklists.
func BenchmarkEvasionExperiment(b *testing.B) {
	var exp *pushadminer.EvasionExperiment
	for i := 0; i < b.N; i++ {
		var err error
		exp, err = pushadminer.RunEvasionExperiment(int64(2+i), 0.004)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s", exp.Table())
}

// BenchmarkTrackingCheck verifies the §8 cookie-tracking mitigation
// (one container per URL).
func BenchmarkTrackingCheck(b *testing.B) {
	var tc *pushadminer.TrackingCheck
	for i := 0; i < b.N; i++ {
		var err error
		tc, err = pushadminer.RunTrackingCheck(int64(1+i), 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s", tc.Table())
}

// BenchmarkScamBreakdown classifies the study's malicious ads into scam
// types (the §6.3.2 qualitative breakdown).
func BenchmarkScamBreakdown(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var t *pushadminer.Table
	for i := 0; i < b.N; i++ {
		t = pushadminer.ScamBreakdownTable(s)
	}
	b.StopTimer()
	logOnce(b, t)
}

// BenchmarkDetector trains and evaluates the future-work real-time
// malicious-WPN detector on the study corpus.
func BenchmarkDetector(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	var rep *pushadminer.DetectorReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = pushadminer.TrainDetector(s, int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("detector held-out: F1=%.3f AUC=%.3f; vs ground truth: F1=%.3f AUC=%.3f",
		rep.Test.F1(), rep.Test.AUC, rep.TruthTest.F1(), rep.TruthTest.AUC)
}

// BenchmarkWord2VecTraining measures the embedding substrate on the
// study corpus.
func BenchmarkWord2VecTraining(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.ExtractFeatures(core.FilterValidLanding(s.Records), core.FeatureOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrawlOnly measures the data-collection module alone.
func BenchmarkCrawlOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eco, err := webeco.New(webeco.Config{Seed: int64(80 + i), Scale: 0.005})
		if err != nil {
			b.Fatal(err)
		}
		pr, err := pushadminer.RunPilot(eco, 15*time.Minute, 7*24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		_ = pr
		eco.Close()
	}
}

var benchSink interface{}

// BenchmarkExportRoundTrip measures record serialization (the
// wpncrawl/wpnanalyze interchange).
func BenchmarkExportRoundTrip(b *testing.B) {
	s := study(b)
	export := core.ExportFromStudy(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := core.WriteExport(&buf, export); err != nil {
			b.Fatal(err)
		}
		benchSink = buf.n
	}
	b.StopTimer()
	b.Logf("export size ≈ %d bytes for %d records", sinkInt(), len(export.Records))
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func sinkInt() int {
	if n, ok := benchSink.(int); ok {
		return n
	}
	return 0
}

var _ = fmt.Sprint // keep fmt imported for debug convenience
