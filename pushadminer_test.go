package pushadminer_test

import (
	"strings"
	"testing"
	"time"

	"pushadminer"
	"pushadminer/internal/core"
)

// TestFacadeEndToEnd exercises the public API the README documents: run
// a study, render tables, evaluate, export, re-analyze.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
		Eco:              pushadminer.EcosystemConfig{Seed: 3, Scale: 0.004},
		CollectionWindow: 7 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	for name, tab := range map[string]*pushadminer.Table{
		"Table3":  pushadminer.Table3(study),
		"Table6":  pushadminer.Table6(study),
		"Figure6": pushadminer.Figure6Table(study),
	} {
		if out := tab.String(); !strings.Contains(out, "—") {
			t.Errorf("%s did not render: %q", name, out)
		}
	}

	ev := study.Evaluate()
	if ev.Precision() < 0.9 {
		t.Errorf("precision = %.3f", ev.Precision())
	}

	// Export → offline re-analysis (the wpncrawl/wpnanalyze flow).
	export := core.ExportFromStudy(study)
	a, err := pushadminer.RunPipeline(export.Records, pushadminer.PipelineOptions{
		Services: core.LookupsFromExport(export),
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.ValidLanding == 0 || a.Report.Clusters == 0 {
		t.Errorf("offline re-analysis empty: %+v", a.Report)
	}
}

func TestNewEcosystemFacade(t *testing.T) {
	eco, err := pushadminer.NewEcosystem(pushadminer.EcosystemConfig{Seed: 1, Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	defer eco.Close()
	if len(eco.SeedURLs()) == 0 {
		t.Error("no seed URLs")
	}
	if len(eco.SeedKeywords()) != 19 {
		t.Errorf("seed keywords = %d, want 19", len(eco.SeedKeywords()))
	}
}
