// Crawl benchmark suite, end-to-end half: a whole study — ecosystem
// generation, seeding, the monitor loop, and the mining pipeline —
// through the public API, in serial (PumpWorkers=1) and parallel
// (PumpWorkers=0) modes. The monitor-phase-only companion lives in
// internal/crawler; scripts/bench.sh runs both and records
// BENCH_crawl.json. The serial/parallel parity tests guarantee the two
// modes agree byte-for-byte before the speedup counts.
//
// Run with:
//
//	make bench-crawl
package pushadminer_test

import (
	"fmt"
	"testing"
	"time"

	"pushadminer"
	"pushadminer/internal/chaos"
	"pushadminer/internal/webeco"
)

// studySizes mirror internal/crawler's crawlSizes: the ecosystem scale
// that registers at least the nominal fleet size (seed 11, desktop:
// scale 0.01 registers ~66 containers, scale 0.05 ~290). The
// end-to-end bench crawls the whole registered fleet.
var studySizes = []struct {
	n     int
	scale float64
}{
	{50, 0.01},
	{200, 0.05},
}

// studyLatency models the WAN round-trip the paper's I/O-bound crawler
// paid on every request: a fixed real-time delay at the vnet choke
// point (the simulated clock does not advance). Draws are
// deterministic per request identity, so serial and parallel studies
// stay byte-identical.
func studyLatency() *chaos.Profile {
	return &chaos.Profile{
		Seed:            11,
		LatencyFraction: 1,
		LatencyMin:      time.Millisecond,
		LatencyMax:      time.Millisecond,
	}
}

var studyRecords int

func benchStudy(b *testing.B, scale float64, workers, shards int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := pushadminer.RunStudy(pushadminer.StudyConfig{
			Eco:              webeco.Config{Seed: 11, Scale: scale, Chaos: studyLatency()},
			CollectionWindow: 7 * 24 * time.Hour,
			SkipMobile:       true,
			PumpWorkers:      workers,
			BatchWindow:      time.Hour,
			Shards:           shards,
			FleetDir:         fleetDir(b, shards),
		})
		if err != nil {
			b.Fatal(err)
		}
		studyRecords += len(study.Records)
		study.Eco.Close()
	}
}

func fleetDir(b *testing.B, shards int) string {
	if shards <= 1 {
		return ""
	}
	return b.TempDir()
}

// BenchmarkStudyEndToEnd measures a full desktop study at the two
// fleet-size classes. Unlike BenchmarkCrawlMonitor this includes the
// phases that do not scale with PumpWorkers (ecosystem generation,
// word2vec, clustering), so its speedup is a lower bound on the
// monitor-phase ratio. The fleet4 mode runs the same study as a
// 4-shard fleet (internal/fleet) with durable per-shard state files,
// measuring the coordinator + state-save overhead of the sharded path
// relative to a single parallel process; its output is byte-identical
// to the other two modes.
func BenchmarkStudyEndToEnd(b *testing.B) {
	for _, size := range studySizes {
		b.Run(fmt.Sprintf("n=%d", size.n), func(b *testing.B) {
			b.Run("serial", func(b *testing.B) { benchStudy(b, size.scale, 1, 0) })
			b.Run("parallel", func(b *testing.B) { benchStudy(b, size.scale, 0, 0) })
			b.Run("fleet4", func(b *testing.B) { benchStudy(b, size.scale, 0, 4) })
		})
	}
}
